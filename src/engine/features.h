// Feature taxonomy of Table 1, detected from parsed queries.
//
// The bench target bench_table1_features parses the paper's example
// queries and regenerates the feature ↔ query matrix of Table 1 (and the
// feature column of Figure 1) from this analysis.
#ifndef GCORE_ENGINE_FEATURES_H_
#define GCORE_ENGINE_FEATURES_H_

#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"

namespace gcore {

/// The features of Table 1.
enum class QueryFeature {
  // Matching
  kHomomorphicMatching,        // all MATCH queries
  kLiteralMatching,            // property filters / value equality
  kKShortestPaths,             // k SHORTEST
  kAllShortestPaths,           // reachability / ALL over Kleene star
  kWeightedShortestPaths,      // ~view refs with COST
  kOptionalMatching,           // OPTIONAL
  // Querying
  kMultipleGraphs,             // >1 distinct ON graphs
  kQueriesOnPaths,             // stored-path matching (@p)
  kFilteringMatches,           // WHERE
  kFilteringPathExpressions,   // PATH ... WHERE
  kValueJoins,                 // WHERE var.prop = var.prop across patterns
  kCartesianProduct,           // multiple patterns without shared variables
  kListMembership,             // IN
  // Subqueries
  kGraphSetOperations,         // UNION/INTERSECT/MINUS
  kImplicitExistential,        // pattern predicate in WHERE
  kExplicitExistential,        // EXISTS (...)
  // Construction
  kGraphConstruction,          // all CONSTRUCT queries
  kGraphAggregation,           // GROUP in CONSTRUCT
  kGraphProjection,            // stored path construction / ALL projection
  kGraphViews,                 // GRAPH VIEW / GRAPH AS
  kPropertyAddition,           // SET / := assignments
  // Extensions (Section 5)
  kTabularProjection,          // SELECT
  kTabularImport,              // FROM table / ON table
};

const char* QueryFeatureToString(QueryFeature feature);

/// All features detected in `query` (recursing into subqueries and views).
std::set<QueryFeature> DetectFeatures(const Query& query);

/// Human-readable report line set, e.g. for the Table 1 bench.
std::vector<std::string> FeatureReport(const Query& query);

}  // namespace gcore

#endif  // GCORE_ENGINE_FEATURES_H_
