#include "engine/validator.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gcore {

const char* VarSortToString(VarSort sort) {
  switch (sort) {
    case VarSort::kNode:
      return "node";
    case VarSort::kEdge:
      return "edge";
    case VarSort::kPath:
      return "path";
    case VarSort::kValue:
      return "value";
  }
  return "?";
}

namespace {

class Validator {
 public:
  Status Check(const Query& query,
               std::set<std::string> inherited_views = {}) {
    std::set<std::string> path_view_names = std::move(inherited_views);
    for (const auto& pc : query.path_clauses) {
      if (!path_view_names.insert(pc.name).second) {
        return Status::BindError("PATH view '" + pc.name +
                                 "' is defined more than once");
      }
      sorts_.clear();
      for (const auto& pattern : pc.patterns) {
        GCORE_RETURN_NOT_OK(
            CheckPatternSorts(pattern, /*in_construct=*/false));
      }
      GCORE_RETURN_NOT_OK(CheckViewRefsKnown(pc.patterns, path_view_names));
    }
    for (const auto& gc : query.graph_clauses) {
      if (gc.query != nullptr) {
        Validator inner;
        GCORE_RETURN_NOT_OK(inner.Check(*gc.query, path_view_names));
      }
    }
    if (query.body != nullptr) {
      GCORE_RETURN_NOT_OK(CheckBody(*query.body, path_view_names));
    }
    return Status::OK();
  }

 private:
  // --- sorts ------------------------------------------------------------------

  std::map<std::string, VarSort> sorts_;

  Status Assign(const std::string& var, VarSort sort) {
    if (var.empty()) return Status::OK();
    auto [it, inserted] = sorts_.emplace(var, sort);
    if (!inserted && it->second != sort) {
      return Status::BindError(
          "variable '" + var + "' is used both as a " +
          VarSortToString(it->second) + " and as a " + VarSortToString(sort) +
          " — sorts must agree (Section 3)");
    }
    return Status::OK();
  }

  Status CheckProps(const std::vector<PropPattern>& props) {
    for (const auto& p : props) {
      if (p.mode == PropPattern::Mode::kBindVariable) {
        GCORE_RETURN_NOT_OK(Assign(p.bind_var, VarSort::kValue));
      }
    }
    return Status::OK();
  }

  Status CheckPatternSorts(const GraphPattern& pattern, bool in_construct) {
    if (pattern.on_subquery != nullptr) {
      Validator inner;
      GCORE_RETURN_NOT_OK(inner.Check(*pattern.on_subquery));
    }
    GCORE_RETURN_NOT_OK(Assign(pattern.start.var, VarSort::kNode));
    GCORE_RETURN_NOT_OK(CheckProps(pattern.start.props));
    for (const auto& hop : pattern.hops) {
      if (hop.kind == PatternHop::Kind::kEdge) {
        GCORE_RETURN_NOT_OK(Assign(hop.edge.var, VarSort::kEdge));
        GCORE_RETURN_NOT_OK(CheckProps(hop.edge.props));
      } else {
        GCORE_RETURN_NOT_OK(Assign(hop.path.var, VarSort::kPath));
        if (!hop.path.cost_var.empty()) {
          GCORE_RETURN_NOT_OK(Assign(hop.path.cost_var, VarSort::kValue));
        }
        if (!in_construct &&
            hop.path.mode == PathPattern::Mode::kAll &&
            !hop.path.var.empty()) {
          all_path_vars_.insert(hop.path.var);
        }
      }
      GCORE_RETURN_NOT_OK(Assign(hop.to.var, VarSort::kNode));
      GCORE_RETURN_NOT_OK(CheckProps(hop.to.props));
    }
    return Status::OK();
  }

  // --- ALL restriction ----------------------------------------------------------

  std::set<std::string> all_path_vars_;

  Status CheckExprAvoidsAllVars(const Expr& expr) const {
    if (all_path_vars_.empty()) return Status::OK();
    std::vector<std::string> vars;
    expr.CollectVariables(&vars);
    for (const auto& v : vars) {
      if (all_path_vars_.count(v) > 0) {
        return Status::Unsupported(
            "path variable '" + v +
            "' is bound by ALL and may only be used for graph projection "
            "(-/" + v + "/-> in CONSTRUCT); using it in expressions would "
            "require materializing all paths (Section 3)");
      }
    }
    return Status::OK();
  }

  // --- view references ------------------------------------------------------------

  static void CollectRefs(const GraphPattern& pattern,
                          std::vector<std::string>* out) {
    for (const auto& hop : pattern.hops) {
      if (hop.kind == PatternHop::Kind::kPath && hop.path.rpq != nullptr) {
        hop.path.rpq->CollectViewRefs(out);
      }
    }
  }

  Status CheckViewRefsKnown(const std::vector<GraphPattern>& patterns,
                            const std::set<std::string>& known) const {
    std::vector<std::string> refs;
    for (const auto& p : patterns) CollectRefs(p, &refs);
    for (const auto& r : refs) {
      if (known.count(r) == 0) {
        return Status::BindError("path expression references PATH view '~" +
                                 r + "' which is not defined in this query");
      }
    }
    return Status::OK();
  }

  // --- clauses -------------------------------------------------------------------

  Status CheckBody(const QueryBody& body,
                   const std::set<std::string>& views) {
    switch (body.kind) {
      case QueryBody::Kind::kBasic:
        return CheckBasic(*body.basic, views);
      case QueryBody::Kind::kGraphRef:
        return Status::OK();
      default:
        GCORE_RETURN_NOT_OK(CheckBody(*body.left, views));
        return CheckBody(*body.right, views);
    }
  }

  Status CheckBasic(const BasicQuery& basic,
                    const std::set<std::string>& views) {
    all_path_vars_.clear();
    sorts_.clear();
    std::set<std::string> match_vars;

    if (basic.match.has_value()) {
      const MatchClause& match = *basic.match;
      for (const auto& p : match.patterns) {
        GCORE_RETURN_NOT_OK(CheckPatternSorts(p, /*in_construct=*/false));
        std::vector<std::string> vars;
        p.CollectBoundVariables(&vars);
        match_vars.insert(vars.begin(), vars.end());
      }
      GCORE_RETURN_NOT_OK(CheckViewRefsKnown(match.patterns, views));
      if (match.where != nullptr) {
        GCORE_RETURN_NOT_OK(CheckExprAvoidsAllVars(*match.where));
        GCORE_RETURN_NOT_OK(CheckSubqueries(*match.where));
      }
      for (const auto& block : match.optionals) {
        for (const auto& p : block.patterns) {
          GCORE_RETURN_NOT_OK(CheckPatternSorts(p, /*in_construct=*/false));
        }
        GCORE_RETURN_NOT_OK(CheckViewRefsKnown(block.patterns, views));
        if (block.where != nullptr) {
          GCORE_RETURN_NOT_OK(CheckExprAvoidsAllVars(*block.where));
        }
      }
    }

    if (basic.construct.has_value()) {
      for (const auto& item : basic.construct->items) {
        if (!item.pattern.has_value()) continue;
        GCORE_RETURN_NOT_OK(
            CheckPatternSorts(*item.pattern, /*in_construct=*/true));
        // Construct-side path patterns must use variables bound by MATCH;
        // @-stored ALL bindings are rejected at runtime, expression uses
        // here.
        for (const auto& hop : item.pattern->hops) {
          if (hop.kind != PatternHop::Kind::kPath) continue;
          if (hop.path.var.empty()) {
            return Status::BindError(
                "construct-side path pattern requires a variable bound by "
                "MATCH");
          }
          if (basic.match.has_value() &&
              match_vars.count(hop.path.var) == 0) {
            return Status::BindError(
                "path variable '" + hop.path.var +
                "' in CONSTRUCT is not bound by the MATCH clause");
          }
          if (hop.path.stored &&
              all_path_vars_.count(hop.path.var) > 0) {
            return Status::Unsupported(
                "storing ALL-paths bindings (@" + hop.path.var +
                ") is intractable; bind the variable without @ to project");
          }
        }
        if (item.when != nullptr) {
          GCORE_RETURN_NOT_OK(CheckExprAvoidsAllVars(*item.when));
        }
        for (const auto& s : item.sets) {
          if (s.kind == SetStatement::Kind::kSetProperty &&
              s.value != nullptr) {
            GCORE_RETURN_NOT_OK(CheckExprAvoidsAllVars(*s.value));
          }
        }
      }
    }

    if (basic.select.has_value()) {
      for (const auto& sel : basic.select->items) {
        GCORE_RETURN_NOT_OK(CheckExprAvoidsAllVars(*sel.expr));
        GCORE_RETURN_NOT_OK(CheckSubqueries(*sel.expr));
      }
    }
    return Status::OK();
  }

  Status CheckSubqueries(const Expr& expr) {
    if (expr.kind == Expr::Kind::kExists && expr.subquery != nullptr) {
      Validator inner;
      GCORE_RETURN_NOT_OK(inner.Check(*expr.subquery));
    }
    for (const auto& arg : expr.args) {
      if (arg != nullptr) GCORE_RETURN_NOT_OK(CheckSubqueries(*arg));
    }
    for (const auto& arm : expr.case_arms) {
      if (arm.condition != nullptr) {
        GCORE_RETURN_NOT_OK(CheckSubqueries(*arm.condition));
      }
      if (arm.result != nullptr) {
        GCORE_RETURN_NOT_OK(CheckSubqueries(*arm.result));
      }
    }
    if (expr.case_else != nullptr) {
      GCORE_RETURN_NOT_OK(CheckSubqueries(*expr.case_else));
    }
    return Status::OK();
  }
};

}  // namespace

Status ValidateQuery(const Query& query) {
  Validator validator;
  return validator.Check(query);
}

}  // namespace gcore
