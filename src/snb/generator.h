// Deterministic LDBC-SNB-like synthetic data generator.
//
// Substitute for the LDBC SNB datagen (see DESIGN.md §3): same schema as
// Figure 3 (Person/City/Company/Tag/Post/Comment; knows/isLocatedIn/
// hasInterest/worksAt/has_creator/reply_of), deterministic under a seed,
// parameterized by person count so the benchmarks can sweep data size for
// the Section 4 complexity-shape experiments.
#ifndef GCORE_SNB_GENERATOR_H_
#define GCORE_SNB_GENERATOR_H_

#include <cstdint>

#include "graph/graph_builder.h"

namespace gcore {
namespace snb {

struct GeneratorOptions {
  /// Number of Person nodes; other entity counts derive from it.
  size_t num_persons = 1000;
  /// Average knows degree (bidirectional pairs ≈ num_persons * avg / 2).
  double avg_knows_degree = 8.0;
  /// Messages (posts+comments) per person on average.
  double messages_per_person = 3.0;
  /// Tags, cities and companies scale with sqrt(num_persons), clamped to
  /// at least these minimums.
  size_t min_tags = 10;
  size_t min_cities = 5;
  size_t min_companies = 8;
  /// RNG seed: identical options produce identical graphs.
  uint64_t seed = 42;
  /// Fraction of persons with a (single) employer property; a small slice
  /// additionally gets a second employer value (multi-valued, like Frank).
  double employed_fraction = 0.7;
  double dual_employer_fraction = 0.05;
};

/// Generates the graph. Degree distribution of knows is skewed (a few
/// hubs, many low-degree nodes) approximating SNB's social topology.
PathPropertyGraph Generate(const GeneratorOptions& options, IdAllocator* ids);

/// Convenience scale factors for benches: persons = 100 * 4^sf.
GeneratorOptions ScaleFactor(int sf);

}  // namespace snb
}  // namespace gcore

#endif  // GCORE_SNB_GENERATOR_H_
