#include "snb/csv.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/date.h"

namespace gcore {

namespace {

/// Splits one logical CSV record (quote-aware); advances *pos past the
/// record's trailing newline.
Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                             size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool any = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '\n' && c != '\r') any = true;  // blank lines yield no record
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field += c;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  *pos = i;
  if (!any) return std::vector<std::string>{};
  fields.push_back(std::move(field));
  return fields;
}

bool LooksNumeric(const std::string& s, bool* is_double) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  bool dot = false, digits = false;
  for (; i < s.size(); ++i) {
    if (s[i] == '.') {
      if (dot) return false;
      dot = true;
    } else if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digits = true;
    } else {
      return false;
    }
  }
  *is_double = dot;
  return digits;
}

}  // namespace

Value InferCsvValue(const std::string& cell) {
  if (cell.empty()) return Value::Null();
  if (cell == "TRUE" || cell == "true") return Value::Bool(true);
  if (cell == "FALSE" || cell == "false") return Value::Bool(false);
  bool is_double = false;
  if (LooksNumeric(cell, &is_double)) {
    if (is_double) return Value::Double(std::stod(cell));
    try {
      return Value::Int(std::stoll(cell));
    } catch (...) {
      return Value::String(cell);
    }
  }
  // Dates: must contain a separator and parse cleanly.
  if (cell.find('-') != std::string::npos ||
      cell.find('/') != std::string::npos) {
    auto date = Date::Parse(cell);
    if (date.ok()) return Value::OfDate(*date);
  }
  return Value::String(cell);
}

Result<Table> ParseCsv(const std::string& text) {
  size_t pos = 0;
  GCORE_ASSIGN_OR_RETURN(auto header, ParseRecord(text, &pos));
  if (header.empty()) {
    return Status::InvalidArgument("CSV input has no header line");
  }
  Table table(header);
  while (pos < text.size()) {
    GCORE_ASSIGN_OR_RETURN(auto record, ParseRecord(text, &pos));
    if (record.empty()) continue;  // blank line
    if (record.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV row has " + std::to_string(record.size()) +
          " fields, header has " + std::to_string(header.size()));
    }
    std::vector<Value> row;
    row.reserve(record.size());
    for (const auto& cell : record) row.push_back(InferCsvValue(cell));
    GCORE_RETURN_NOT_OK(table.AddRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

namespace {

std::string QuoteIfNeeded(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string WriteCsv(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += ',';
    out += QuoteIfNeeded(table.columns()[c]);
  }
  out += '\n';
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out += ',';
      const Value& v = table.At(r, c);
      if (v.is_null()) continue;  // empty field
      out += QuoteIfNeeded(v.ToString());
    }
    out += '\n';
  }
  return out;
}

}  // namespace gcore
