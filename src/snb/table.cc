#include "snb/table.h"

#include <algorithm>
#include <sstream>

namespace gcore {

size_t Table::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return i;
  }
  return kNpos;
}

Status Table::AddRow(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells, table has " +
        std::to_string(columns_.size()) + " columns");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::SortRows() {
  std::sort(rows_.begin(), rows_.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              return std::lexicographical_compare(a.begin(), a.end(),
                                                  b.begin(), b.end());
            });
}

std::string Table::ToString() const {
  // Compute column widths over header + cells.
  std::vector<size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (size_t r = 0; r < rows_.size(); ++r) {
    cells[r].reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells[r].push_back(rows_[r][c].ToString());
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::ostringstream out;
  auto pad = [&](const std::string& s, size_t w) {
    out << s << std::string(w - s.size(), ' ');
  };
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out << " | ";
    pad(columns_[c], widths[c]);
  }
  out << "\n";
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out << "-+-";
    out << std::string(widths[c], '-');
  }
  out << "\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out << " | ";
      pad(cells[r][c], widths[c]);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace gcore
