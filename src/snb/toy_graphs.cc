#include "snb/toy_graphs.h"

#include "snb/schema.h"

namespace gcore {
namespace snb {

PathPropertyGraph MakeExampleGraph(IdAllocator* ids) {
  GraphBuilder b("example_graph", ids);
  const NodeId tag = b.AddNodeWithId(101, {kTag}, {{kName, "Wagner"}});
  const NodeId anna =
      b.AddNodeWithId(102, {kPerson, kManager}, {{kName, "Anna"}});
  const NodeId ben = b.AddNodeWithId(103, {kPerson}, {{kName, "Ben"}});
  const NodeId clara = b.AddNodeWithId(104, {kPerson}, {{kName, "Clara"}});
  const NodeId dana = b.AddNodeWithId(105, {kPerson}, {{kName, "Dana"}});
  const NodeId houston = b.AddNodeWithId(106, {kCity}, {{kName, "Houston"}});

  b.AddEdgeWithId(201, anna, tag, kHasInterest);
  b.AddEdgeWithId(202, ben, anna, kKnows);
  b.AddEdgeWithId(203, dana, houston, "locatedIn");
  b.AddEdgeWithId(204, anna, houston, "locatedIn");
  b.AddEdgeWithId(205, clara, dana, kKnows,
                  {{kSince, Value::OfDate(Date{2014, 12, 1})}});
  b.AddEdgeWithId(206, dana, tag, kHasInterest);
  b.AddEdgeWithId(207, dana, ben, kKnows);

  // δ(301) = [105, 207, 103, 202, 102]: Dana —knows→ Ben —knows→ Anna,
  // traversing 202 against its direction.
  auto path = b.AddPathWithId(301, {dana, ben, anna},
                              {EdgeId(207), EdgeId(202)}, {"toWagner"},
                              {{kTrust, 0.95}});
  (void)path;
  return b.Build();
}

PathPropertyGraph MakeSocialGraph(IdAllocator* ids) {
  GraphBuilder b("social_graph", ids);

  const NodeId john = b.AddNodeWithId(
      kJohnId, {kPerson},
      {{kFirstName, "John"}, {kLastName, "Doe"}, {kEmployer, "Acme"}});
  const NodeId peter = b.AddNodeWithId(
      kPeterId, {kPerson}, {{kFirstName, "Peter"}, {kLastName, "Park"}});
  const NodeId alice = b.AddNodeWithId(
      kAliceId, {kPerson},
      {{kFirstName, "Alice"}, {kLastName, "Alba"}, {kEmployer, "Acme"}});
  const NodeId celine = b.AddNodeWithId(
      kCelineId, {kPerson},
      {{kFirstName, "Celine"}, {kLastName, "Mayer"}, {kEmployer, "HAL"}});
  const NodeId frank = b.AddNodeWithId(
      kFrankId, {kPerson}, {{kFirstName, "Frank"}, {kLastName, "Gold"}});
  // Frank works for both MIT and CWI: the multi-valued employer property
  // driving the pp. 8-9 discussion.
  b.AddNodePropertyValue(frank, kEmployer, Value::String("CWI"));
  b.AddNodePropertyValue(frank, kEmployer, Value::String("MIT"));

  const NodeId houston =
      b.AddNodeWithId(kHoustonId, {kCity}, {{kName, "Houston"}});
  const NodeId austin =
      b.AddNodeWithId(kAustinId, {kCity}, {{kName, "Austin"}});
  const NodeId wagner =
      b.AddNodeWithId(kWagnerTagId, {kTag}, {{kName, "Wagner"}});

  // isLocatedIn: everyone but Alice lives in Houston.
  b.AddEdge(john, houston, kIsLocatedIn);
  b.AddEdge(peter, houston, kIsLocatedIn);
  b.AddEdge(celine, houston, kIsLocatedIn);
  b.AddEdge(frank, houston, kIsLocatedIn);
  b.AddEdge(alice, austin, kIsLocatedIn);

  // knows edges are bidirectional: one edge in each direction (Figure 4
  // caption).
  auto knows_pair = [&](NodeId a, NodeId c) {
    b.AddEdge(a, c, kKnows);
    b.AddEdge(c, a, kKnows);
  };
  knows_pair(john, peter);
  knows_pair(john, alice);
  knows_pair(peter, celine);
  knows_pair(peter, frank);

  // The two Wagner lovers, both reachable from John only via Peter.
  b.AddEdge(celine, wagner, kHasInterest);
  b.AddEdge(frank, wagner, kHasInterest);

  // Message threads (posts/comments with has_creator and reply_of),
  // chosen so that social_graph1's nr_messages are:
  //   John-Peter: 2 each way, Peter-Celine: 1 each way, others: 0.
  const NodeId post1 =
      b.AddNodeWithId(1120, {kPost}, {{kContent, "opera season"}});
  const NodeId comment1 =
      b.AddNodeWithId(1121, {kComment}, {{kContent, "which one?"}});
  const NodeId comment2 =
      b.AddNodeWithId(1122, {kComment}, {{kContent, "the Ring"}});
  const NodeId post2 =
      b.AddNodeWithId(1123, {kPost}, {{kContent, "concert hall"}});
  const NodeId comment3 =
      b.AddNodeWithId(1124, {kComment}, {{kContent, "lovely"}});

  b.AddEdge(post1, peter, kHasCreator);
  b.AddEdge(comment1, john, kHasCreator);
  b.AddEdge(comment2, peter, kHasCreator);
  b.AddEdge(post2, celine, kHasCreator);
  b.AddEdge(comment3, peter, kHasCreator);

  b.AddEdge(comment1, post1, kReplyOf);
  b.AddEdge(comment2, comment1, kReplyOf);
  b.AddEdge(comment3, post2, kReplyOf);

  return b.Build();
}

PathPropertyGraph MakeCompanyGraph(IdAllocator* ids) {
  GraphBuilder b("company_graph", ids);
  b.AddNodeWithId(2101, {kCompany}, {{kName, "Acme"}});
  b.AddNodeWithId(2102, {kCompany}, {{kName, "HAL"}});
  b.AddNodeWithId(2103, {kCompany}, {{kName, "CWI"}});
  b.AddNodeWithId(2104, {kCompany}, {{kName, "MIT"}});
  return b.Build();
}

Table MakeOrdersTable() {
  Table orders({"custName", "prodCode"});
  Status st = Status::OK();
  auto add = [&](const char* cust, const char* prod) {
    st = orders.AddRow({Value::String(cust), Value::String(prod)});
  };
  add("Ada", "P100");
  add("Ada", "P200");
  add("Bob", "P100");
  add("Cyd", "P300");
  add("Bob", "P300");
  add("Ada", "P100");  // duplicate order line: grouping must not duplicate
  (void)st;
  return orders;
}

void RegisterToyData(GraphCatalog* catalog) {
  catalog->RegisterGraph("example_graph", MakeExampleGraph(catalog->ids()));
  catalog->RegisterGraph("social_graph", MakeSocialGraph(catalog->ids()));
  catalog->RegisterGraph("company_graph", MakeCompanyGraph(catalog->ids()));
  catalog->RegisterTable("orders", MakeOrdersTable());
  catalog->SetDefaultGraph("social_graph");
}

}  // namespace snb
}  // namespace gcore
