// The paper's concrete toy instances, reconstructed so that every printed
// result of the guided tour and the formal appendix reproduces exactly.
#ifndef GCORE_SNB_TOY_GRAPHS_H_
#define GCORE_SNB_TOY_GRAPHS_H_

#include "graph/catalog.h"
#include "graph/graph_builder.h"
#include "snb/table.h"

namespace gcore {
namespace snb {

/// Figure 2 / Example 2.2: the small social network with stored path 301
/// (:toWagner, trust 0.95). Node ids 101..106, edge ids 201..207, path
/// id 301 — exactly as printed.
///
///   101 Tag{name:Wagner}        102 Person,Manager (in Houston)
///   103 Person                  104 Person
///   105 Person (in Houston)     106 City{name:Houston}
///   201 hasInterest 102→101     202 knows 103→102
///   203 locatedIn   105→106     204 locatedIn 102→106
///   205 knows 104→105 {since:1/12/2014}
///   206 hasInterest 105→101     207 knows 105→103
///   301 = [105, 207, 103, 202, 102]  :toWagner {trust: 0.95}
PathPropertyGraph MakeExampleGraph(IdAllocator* ids);

/// Figure 4: `social_graph`, the guided-tour instance. Five persons
/// (John Doe, Peter, Alice, Celine, Frank Gold — Frank's employer is the
/// set {"CWI","MIT"}, Peter has none), bidirectional knows edges, cities,
/// the Wagner tag with two lovers (Celine, Frank) reachable via Peter, and
/// the post/comment threads that give the nr_messages counts of Figure 5.
PathPropertyGraph MakeSocialGraph(IdAllocator* ids);

/// The temporary `company_graph` of the data-integration example
/// (lines 5-9): isolated Company nodes Acme, HAL, CWI, MIT.
PathPropertyGraph MakeCompanyGraph(IdAllocator* ids);

/// The `orders` table of the Section 5 import examples (lines 76-85).
Table MakeOrdersTable();

/// Registers example_graph, social_graph (as default), company_graph and
/// the orders table into `catalog`.
void RegisterToyData(GraphCatalog* catalog);

// Stable node ids inside social_graph, for tests.
inline constexpr uint64_t kJohnId = 1101;
inline constexpr uint64_t kPeterId = 1102;
inline constexpr uint64_t kAliceId = 1103;
inline constexpr uint64_t kCelineId = 1104;
inline constexpr uint64_t kFrankId = 1105;
inline constexpr uint64_t kHoustonId = 1106;
inline constexpr uint64_t kAustinId = 1107;
inline constexpr uint64_t kWagnerTagId = 1108;

}  // namespace snb
}  // namespace gcore

#endif  // GCORE_SNB_TOY_GRAPHS_H_
