// CSV import/export for tables — the practical entry point for the
// Section 5 "importing tabular data" workflows (FROM <table>,
// MATCH (o) ON <table>).
//
// Dialect: comma-separated, first line is the header, RFC-4180-style
// double-quote quoting ("" escapes a quote inside a quoted field). Cell
// typing is inferred per cell: integer, double, TRUE/FALSE, date
// (ISO or d/m/yyyy), empty = NULL, otherwise string.
#ifndef GCORE_SNB_CSV_H_
#define GCORE_SNB_CSV_H_

#include <string>

#include "common/result.h"
#include "snb/table.h"

namespace gcore {

/// Parses CSV text into a table. Fails on ragged rows or unterminated
/// quotes.
Result<Table> ParseCsv(const std::string& text);

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path);

/// Serializes a table to CSV (header + rows; strings quoted when they
/// contain separators/quotes/newlines; NULL cells are empty).
std::string WriteCsv(const Table& table);

/// Infers a typed Value from one raw CSV cell.
Value InferCsvValue(const std::string& cell);

}  // namespace gcore

#endif  // GCORE_SNB_CSV_H_
