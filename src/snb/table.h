// A plain in-memory table: the tabular side of the Section 5 extensions.
//
// Tables feed queries through `FROM <table>` (binding inputs) and
// `MATCH (o) ON <table>` (table interpreted as a graph of isolated nodes),
// and queries can produce tables through the SELECT projection extension.
#ifndef GCORE_SNB_TABLE_H_
#define GCORE_SNB_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace gcore {

/// Column-named, row-oriented table of single literals.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  size_t NumColumns() const { return columns_.size(); }
  size_t NumRows() const { return rows_.size(); }
  bool Empty() const { return rows_.empty(); }

  /// Index of `column`, or npos.
  static constexpr size_t kNpos = ~size_t{0};
  size_t ColumnIndex(const std::string& column) const;

  /// Appends a row; must have NumColumns() cells.
  Status AddRow(std::vector<Value> row);

  const std::vector<Value>& Row(size_t i) const { return rows_[i]; }
  const Value& At(size_t row, size_t col) const { return rows_[row][col]; }
  const std::vector<std::vector<Value>>& rows() const { return rows_; }

  /// Sorts rows lexicographically (deterministic output for tests/benches).
  void SortRows();

  /// Pretty ASCII rendering with a header line.
  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace gcore

#endif  // GCORE_SNB_TABLE_H_
