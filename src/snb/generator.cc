#include "snb/generator.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <vector>

#include "snb/schema.h"

namespace gcore {
namespace snb {

namespace {

const char* kFirstNames[] = {"John",  "Alice",  "Peter", "Celine", "Frank",
                             "Maria", "Wei",    "Amina", "Louis",  "Sofia",
                             "Ivan",  "Noor",   "Hugo",  "Emma",   "Raj",
                             "Yuki",  "Omar",   "Lena",  "Carlos", "Nina"};
const char* kLastNames[] = {"Doe",    "Alba",   "Park",   "Mayer", "Gold",
                            "Silva",  "Chen",   "Diallo", "Brun",  "Rossi",
                            "Petrov", "Haddad", "Klein",  "Svens", "Patel",
                            "Sato",   "Nasser", "Weber",  "Lopez", "Novak"};
const char* kCityNames[] = {"Houston", "Austin", "Leiden", "Santiago",
                            "Talca",   "Delft",  "Dresden", "Eindhoven",
                            "Oslo",    "Kyoto",  "Lagos",   "Quito"};
const char* kCompanyNames[] = {"Acme", "HAL",    "CWI",    "MIT",
                               "Ldbc", "Orcl",   "Neo",    "Sap",
                               "Tuc",  "Sparsity", "Huawei", "Capsenta"};
const char* kTagNames[] = {"Wagner", "Verdi",  "Mahler", "Bach",  "Chess",
                           "Go",     "Cycling", "Hiking", "Jazz",  "Sushi",
                           "Coffee", "Trains",  "Graphs", "Paths", "Opera"};

std::string Numbered(const char* base, size_t i) {
  return std::string(base) + "_" + std::to_string(i);
}

}  // namespace

GeneratorOptions ScaleFactor(int sf) {
  GeneratorOptions options;
  options.num_persons = 100;
  for (int i = 0; i < sf; ++i) options.num_persons *= 4;
  return options;
}

PathPropertyGraph Generate(const GeneratorOptions& options,
                           IdAllocator* ids) {
  std::mt19937_64 rng(options.seed);
  GraphBuilder b("snb", ids);

  const size_t n = options.num_persons;
  const size_t sqrt_n = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  const size_t num_cities = std::max(options.min_cities, sqrt_n / 2);
  const size_t num_companies = std::max(options.min_companies, sqrt_n / 2);
  const size_t num_tags = std::max(options.min_tags, sqrt_n);

  // --- entity nodes ----------------------------------------------------------
  std::vector<NodeId> cities;
  cities.reserve(num_cities);
  for (size_t i = 0; i < num_cities; ++i) {
    const std::string name =
        i < std::size(kCityNames) ? kCityNames[i] : Numbered("City", i);
    cities.push_back(b.AddNode({kCity}, {{kName, name}}));
  }
  std::vector<NodeId> companies;
  std::vector<std::string> company_names;
  companies.reserve(num_companies);
  for (size_t i = 0; i < num_companies; ++i) {
    const std::string name = i < std::size(kCompanyNames)
                                 ? kCompanyNames[i]
                                 : Numbered("Co", i);
    company_names.push_back(name);
    companies.push_back(b.AddNode({kCompany}, {{kName, name}}));
  }
  std::vector<NodeId> tags;
  tags.reserve(num_tags);
  for (size_t i = 0; i < num_tags; ++i) {
    const std::string name =
        i < std::size(kTagNames) ? kTagNames[i] : Numbered("Tag", i);
    tags.push_back(b.AddNode({kTag}, {{kName, name}}));
  }

  // --- persons ----------------------------------------------------------------
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<NodeId> persons;
  persons.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string first = kFirstNames[i % std::size(kFirstNames)];
    const std::string last =
        std::string(kLastNames[(i / std::size(kFirstNames)) %
                               std::size(kLastNames)]) +
        (i >= 400 ? "_" + std::to_string(i / 400) : "");
    const NodeId person =
        b.AddNode({kPerson}, {{kFirstName, first}, {kLastName, last}});
    persons.push_back(person);

    // City: skewed (population-like) distribution.
    const size_t city_idx = std::min<size_t>(
        static_cast<size_t>(std::pow(unit(rng), 2.0) *
                            static_cast<double>(num_cities)),
        num_cities - 1);
    b.AddEdge(person, cities[city_idx], kIsLocatedIn);

    // Employment: employer as a string property (like the guided tour)
    // plus a worksAt edge (like the real SNB).
    if (unit(rng) < options.employed_fraction) {
      const size_t c = static_cast<size_t>(unit(rng) *
                                           static_cast<double>(num_companies));
      const size_t ci = std::min(c, num_companies - 1);
      b.AddNodePropertyValue(person, kEmployer,
                             Value::String(company_names[ci]));
      b.AddEdge(person, companies[ci], kWorksAt);
      if (unit(rng) < options.dual_employer_fraction) {
        const size_t c2 = (ci + 1) % num_companies;
        b.AddNodePropertyValue(person, kEmployer,
                               Value::String(company_names[c2]));
        b.AddEdge(person, companies[c2], kWorksAt);
      }
    }

    // Interests: 1-3 tags, zipf-ish.
    const int num_interests = 1 + static_cast<int>(unit(rng) * 3.0);
    for (int t = 0; t < num_interests; ++t) {
      const size_t tag_idx = std::min<size_t>(
          static_cast<size_t>(std::pow(unit(rng), 1.5) *
                              static_cast<double>(num_tags)),
          num_tags - 1);
      b.AddEdge(person, tags[tag_idx], kHasInterest);
    }
  }

  // --- knows edges (skewed degree, bidirectional pairs) -------------------------
  const size_t num_pairs = static_cast<size_t>(
      static_cast<double>(n) * options.avg_knows_degree / 2.0);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  auto pick_skewed = [&]() {
    // Quadratic skew toward low indices produces hub-like degrees.
    const double u = unit(rng);
    return std::min<size_t>(
        static_cast<size_t>(u * u * static_cast<double>(n)), n - 1);
  };
  for (size_t i = 0; i < num_pairs; ++i) {
    const size_t a = pick_skewed();
    size_t c = static_cast<size_t>(unit(rng) * static_cast<double>(n));
    c = std::min(c, n - 1);
    if (a == c) continue;
    const uint64_t ua = persons[a].value();
    const uint64_t uc = persons[c].value();
    const std::pair<uint64_t, uint64_t> key{std::min(ua, uc),
                                            std::max(ua, uc)};
    if (!seen.insert(key).second) continue;
    b.AddEdge(persons[a], persons[c], kKnows);
    b.AddEdge(persons[c], persons[a], kKnows);
  }

  // --- messages ------------------------------------------------------------------
  const size_t num_messages = static_cast<size_t>(
      static_cast<double>(n) * options.messages_per_person);
  std::vector<NodeId> messages;
  messages.reserve(num_messages);
  for (size_t i = 0; i < num_messages; ++i) {
    const bool is_post = messages.empty() || unit(rng) < 0.3;
    const size_t author = std::min(
        static_cast<size_t>(unit(rng) * static_cast<double>(n)), n - 1);
    const NodeId msg =
        b.AddNode({is_post ? kPost : kComment},
                  {{kContent, Numbered(is_post ? "post" : "comment", i)}});
    b.AddEdge(msg, persons[author], kHasCreator);
    if (!is_post) {
      const size_t parent = std::min(
          static_cast<size_t>(unit(rng) * static_cast<double>(messages.size())),
          messages.size() - 1);
      b.AddEdge(msg, messages[parent], kReplyOf);
    }
    messages.push_back(msg);
  }

  return b.Build();
}

}  // namespace snb
}  // namespace gcore
