// Label and property vocabulary of the (simplified) LDBC SNB schema of
// Figure 3. Centralizing the strings keeps the generator, toy graphs,
// tests and benches consistent.
#ifndef GCORE_SNB_SCHEMA_H_
#define GCORE_SNB_SCHEMA_H_

namespace gcore {
namespace snb {

// Node labels.
inline constexpr const char* kPerson = "Person";
inline constexpr const char* kCity = "City";
inline constexpr const char* kCompany = "Company";
inline constexpr const char* kTag = "Tag";
inline constexpr const char* kPost = "Post";
inline constexpr const char* kComment = "Comment";
inline constexpr const char* kManager = "Manager";

// Edge labels.
inline constexpr const char* kKnows = "knows";
inline constexpr const char* kIsLocatedIn = "isLocatedIn";
inline constexpr const char* kHasInterest = "hasInterest";
inline constexpr const char* kWorksAt = "worksAt";
inline constexpr const char* kHasCreator = "has_creator";
inline constexpr const char* kReplyOf = "reply_of";

// Property keys.
inline constexpr const char* kFirstName = "firstName";
inline constexpr const char* kLastName = "lastName";
inline constexpr const char* kEmployer = "employer";
inline constexpr const char* kName = "name";
inline constexpr const char* kContent = "content";
inline constexpr const char* kSince = "since";
inline constexpr const char* kNrMessages = "nr_messages";
inline constexpr const char* kTrust = "trust";

}  // namespace snb
}  // namespace gcore

#endif  // GCORE_SNB_SCHEMA_H_
