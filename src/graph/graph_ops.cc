#include "graph/graph_ops.h"

namespace gcore {

bool Consistent(const PathPropertyGraph& g1, const PathPropertyGraph& g2) {
  bool ok = true;
  g1.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (!ok || !g2.HasEdge(e)) return;
    if (g2.EdgeEndpoints(e) != std::make_pair(src, dst)) ok = false;
  });
  if (!ok) return false;
  g1.ForEachPath([&](PathId p, const PathBody& body) {
    if (!ok || !g2.HasPath(p)) return;
    if (!(g2.Path(p) == body)) ok = false;
  });
  return ok;
}

namespace {

/// Copies λ/σ of a node/edge/path from `src` into `dst` via set-union
/// merge.
template <typename IdType>
void MergeObject(const PathPropertyGraph& src, IdType id,
                 PathPropertyGraph* dst) {
  LabelSet labels = dst->Labels(id);
  labels.UnionWith(src.Labels(id));
  dst->SetLabels(id, std::move(labels));
  PropertyMap props = dst->Properties(id);
  props.UnionWith(src.Properties(id));
  dst->SetProperties(id, std::move(props));
}

}  // namespace

PathPropertyGraph GraphUnion(const PathPropertyGraph& g1,
                             const PathPropertyGraph& g2) {
  if (!Consistent(g1, g2)) return PathPropertyGraph();
  PathPropertyGraph out;

  for (const PathPropertyGraph* g : {&g1, &g2}) {
    g->ForEachNode([&](NodeId n) {
      out.AddNode(n);
      MergeObject(*g, n, &out);
    });
  }
  for (const PathPropertyGraph* g : {&g1, &g2}) {
    g->ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
      Status st = out.AddEdge(e, src, dst);
      (void)st;  // consistency was pre-checked
      MergeObject(*g, e, &out);
    });
  }
  for (const PathPropertyGraph* g : {&g1, &g2}) {
    g->ForEachPath([&](PathId p, const PathBody& body) {
      Status st = out.AddPath(p, body);
      (void)st;
      MergeObject(*g, p, &out);
    });
  }
  return out;
}

PathPropertyGraph GraphIntersect(const PathPropertyGraph& g1,
                                 const PathPropertyGraph& g2) {
  if (!Consistent(g1, g2)) return PathPropertyGraph();
  PathPropertyGraph out;

  g1.ForEachNode([&](NodeId n) {
    if (!g2.HasNode(n)) return;
    out.AddNode(n);
    LabelSet labels = g1.Labels(n);
    labels.IntersectWith(g2.Labels(n));
    out.SetLabels(n, std::move(labels));
    PropertyMap props = g1.Properties(n);
    props.IntersectWith(g2.Properties(n));
    out.SetProperties(n, std::move(props));
  });
  g1.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (!g2.HasEdge(e)) return;
    // ρ agrees by consistency; endpoints are in N1 ∩ N2 because both
    // graphs contain the edge and are individually well-formed.
    Status st = out.AddEdge(e, src, dst);
    (void)st;
    LabelSet labels = g1.Labels(e);
    labels.IntersectWith(g2.Labels(e));
    out.SetLabels(e, std::move(labels));
    PropertyMap props = g1.Properties(e);
    props.IntersectWith(g2.Properties(e));
    out.SetProperties(e, std::move(props));
  });
  g1.ForEachPath([&](PathId p, const PathBody& body) {
    if (!g2.HasPath(p)) return;
    Status st = out.AddPath(p, body);
    (void)st;
    LabelSet labels = g1.Labels(p);
    labels.IntersectWith(g2.Labels(p));
    out.SetLabels(p, std::move(labels));
    PropertyMap props = g1.Properties(p);
    props.IntersectWith(g2.Properties(p));
    out.SetProperties(p, std::move(props));
  });
  return out;
}

PathPropertyGraph GraphMinus(const PathPropertyGraph& g1,
                             const PathPropertyGraph& g2) {
  PathPropertyGraph out;
  g1.ForEachNode([&](NodeId n) {
    if (g2.HasNode(n)) return;
    out.AddNode(n);
    out.SetLabels(n, g1.Labels(n));
    out.SetProperties(n, g1.Properties(n));
  });
  g1.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (g2.HasEdge(e)) return;
    if (!out.HasNode(src) || !out.HasNode(dst)) return;  // would dangle
    Status st = out.AddEdge(e, src, dst);
    (void)st;
    out.SetLabels(e, g1.Labels(e));
    out.SetProperties(e, g1.Properties(e));
  });
  g1.ForEachPath([&](PathId p, const PathBody& body) {
    if (g2.HasPath(p)) return;
    for (NodeId n : body.nodes) {
      if (!out.HasNode(n)) return;
    }
    for (EdgeId e : body.edges) {
      if (!out.HasEdge(e)) return;
    }
    Status st = out.AddPath(p, body);
    (void)st;
    out.SetLabels(p, g1.Labels(p));
    out.SetProperties(p, g1.Properties(p));
  });
  return out;
}

bool GraphEquals(const PathPropertyGraph& g1, const PathPropertyGraph& g2) {
  if (g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() ||
      g1.NumPaths() != g2.NumPaths()) {
    return false;
  }
  bool eq = true;
  g1.ForEachNode([&](NodeId n) {
    if (!eq) return;
    if (!g2.HasNode(n) || !(g1.Labels(n) == g2.Labels(n)) ||
        !(g1.Properties(n) == g2.Properties(n))) {
      eq = false;
    }
  });
  if (!eq) return false;
  g1.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (!eq) return;
    if (!g2.HasEdge(e) ||
        g2.EdgeEndpoints(e) != std::make_pair(src, dst) ||
        !(g1.Labels(e) == g2.Labels(e)) ||
        !(g1.Properties(e) == g2.Properties(e))) {
      eq = false;
    }
  });
  if (!eq) return false;
  g1.ForEachPath([&](PathId p, const PathBody& body) {
    if (!eq) return;
    if (!g2.HasPath(p) || !(g2.Path(p) == body) ||
        !(g1.Labels(p) == g2.Labels(p)) ||
        !(g1.Properties(p) == g2.Properties(p))) {
      eq = false;
    }
  });
  return eq;
}

}  // namespace gcore
