#include "graph/ppg.h"

#include <algorithm>
#include <sstream>

namespace gcore {

namespace {
const LabelSet kEmptyLabels;
const PropertyMap kEmptyProps;
const ValueSet kEmptyValues;
}  // namespace

// --- LabelSet ----------------------------------------------------------------

LabelSet::LabelSet(std::vector<std::string> labels)
    : labels_(std::move(labels)) {
  std::sort(labels_.begin(), labels_.end());
  labels_.erase(std::unique(labels_.begin(), labels_.end()), labels_.end());
}

void LabelSet::Insert(const std::string& label) {
  auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it != labels_.end() && *it == label) return;
  labels_.insert(it, label);
}

void LabelSet::Remove(const std::string& label) {
  auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it != labels_.end() && *it == label) labels_.erase(it);
}

bool LabelSet::Contains(const std::string& label) const {
  return std::binary_search(labels_.begin(), labels_.end(), label);
}

void LabelSet::UnionWith(const LabelSet& other) {
  for (const auto& l : other.labels_) Insert(l);
}

void LabelSet::IntersectWith(const LabelSet& other) {
  std::vector<std::string> kept;
  std::set_intersection(labels_.begin(), labels_.end(), other.labels_.begin(),
                        other.labels_.end(), std::back_inserter(kept));
  labels_ = std::move(kept);
}

std::string LabelSet::ToString() const {
  std::string out;
  for (const auto& l : labels_) {
    out += ':';
    out += l;
  }
  return out;
}

// --- PropertyMap --------------------------------------------------------------

const ValueSet& PropertyMap::Get(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? kEmptyValues : it->second;
}

void PropertyMap::Set(const std::string& key, ValueSet values) {
  if (values.empty()) {
    entries_.erase(key);
  } else {
    entries_[key] = std::move(values);
  }
}

void PropertyMap::Add(const std::string& key, Value value) {
  entries_[key].Insert(std::move(value));
}

void PropertyMap::Remove(const std::string& key) { entries_.erase(key); }

bool PropertyMap::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

void PropertyMap::UnionWith(const PropertyMap& other) {
  for (const auto& [key, values] : other.entries_) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(key, values);
    } else {
      it->second = Union(it->second, values);
    }
  }
}

void PropertyMap::IntersectWith(const PropertyMap& other) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto other_it = other.entries_.find(it->first);
    if (other_it == other.entries_.end()) {
      it = entries_.erase(it);
      continue;
    }
    it->second = Intersect(it->second, other_it->second);
    if (it->second.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string PropertyMap::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, values] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += key;
    out += ": ";
    out += values.ToString();
  }
  out += "}";
  return out;
}

// --- PathPropertyGraph ---------------------------------------------------------

void PathPropertyGraph::AddNode(NodeId id) { nodes_.try_emplace(id); }

Status PathPropertyGraph::AddEdge(EdgeId id, NodeId src, NodeId dst) {
  if (!HasNode(src) || !HasNode(dst)) {
    return Status::InvalidArgument("edge " + gcore::ToString(id) +
                                   " endpoints must be graph members");
  }
  auto it = edges_.find(id);
  if (it != edges_.end()) {
    if (it->second.src != src || it->second.dst != dst) {
      return Status::InvalidArgument(
          "edge " + gcore::ToString(id) +
          " re-added with different endpoints (identity violation)");
    }
    return Status::OK();
  }
  EdgeData data;
  data.src = src;
  data.dst = dst;
  edges_.emplace(id, std::move(data));
  return Status::OK();
}

Status PathPropertyGraph::AddPath(PathId id, PathBody body) {
  if (body.nodes.size() != body.edges.size() + 1) {
    return Status::InvalidArgument("path body must have n+1 nodes for n edges");
  }
  for (NodeId n : body.nodes) {
    if (!HasNode(n)) {
      return Status::InvalidArgument("path node " + gcore::ToString(n) +
                                     " is not a graph member");
    }
  }
  for (size_t i = 0; i < body.edges.size(); ++i) {
    auto it = edges_.find(body.edges[i]);
    if (it == edges_.end()) {
      return Status::InvalidArgument("path edge " +
                                     gcore::ToString(body.edges[i]) +
                                     " is not a graph member");
    }
    const NodeId a = body.nodes[i];
    const NodeId b = body.nodes[i + 1];
    const bool forward = it->second.src == a && it->second.dst == b;
    const bool backward = it->second.src == b && it->second.dst == a;
    if (!forward && !backward) {
      return Status::InvalidArgument(
          "path edge " + gcore::ToString(body.edges[i]) +
          " does not connect consecutive path nodes (Definition 2.1 (3))");
    }
  }
  auto it = paths_.find(id);
  if (it != paths_.end()) {
    if (!(it->second.body == body)) {
      return Status::InvalidArgument(
          "path " + gcore::ToString(id) +
          " re-added with different body (identity violation)");
    }
    return Status::OK();
  }
  PathData data;
  data.body = std::move(body);
  paths_.emplace(id, std::move(data));
  return Status::OK();
}

std::pair<NodeId, NodeId> PathPropertyGraph::EdgeEndpoints(EdgeId id) const {
  const auto& data = edges_.at(id);
  return {data.src, data.dst};
}

const PathBody& PathPropertyGraph::Path(PathId id) const {
  return paths_.at(id).body;
}

// Label/property accessors are triplicated over the three stores; a small
// macro keeps the definitions in sync.
#define GCORE_PPG_OBJECT_ACCESSORS(IdType, store)                             \
  const LabelSet& PathPropertyGraph::Labels(IdType id) const {                \
    auto it = store.find(id);                                                 \
    return it == store.end() ? kEmptyLabels : it->second.labels;              \
  }                                                                           \
  void PathPropertyGraph::AddLabel(IdType id, const std::string& label) {     \
    auto it = store.find(id);                                                 \
    if (it != store.end()) it->second.labels.Insert(label);                   \
  }                                                                           \
  void PathPropertyGraph::RemoveLabel(IdType id, const std::string& label) {  \
    auto it = store.find(id);                                                 \
    if (it != store.end()) it->second.labels.Remove(label);                   \
  }                                                                           \
  void PathPropertyGraph::SetLabels(IdType id, LabelSet labels) {             \
    auto it = store.find(id);                                                 \
    if (it != store.end()) it->second.labels = std::move(labels);             \
  }                                                                           \
  const PropertyMap& PathPropertyGraph::Properties(IdType id) const {         \
    auto it = store.find(id);                                                 \
    return it == store.end() ? kEmptyProps : it->second.props;                \
  }                                                                           \
  const ValueSet& PathPropertyGraph::Property(IdType id,                      \
                                              const std::string& key) const { \
    auto it = store.find(id);                                                 \
    return it == store.end() ? kEmptyValues : it->second.props.Get(key);      \
  }                                                                           \
  void PathPropertyGraph::SetProperty(IdType id, const std::string& key,      \
                                      ValueSet values) {                      \
    auto it = store.find(id);                                                 \
    if (it != store.end()) it->second.props.Set(key, std::move(values));      \
  }                                                                           \
  void PathPropertyGraph::RemoveProperty(IdType id, const std::string& key) { \
    auto it = store.find(id);                                                 \
    if (it != store.end()) it->second.props.Remove(key);                      \
  }                                                                           \
  void PathPropertyGraph::SetProperties(IdType id, PropertyMap props) {       \
    auto it = store.find(id);                                                 \
    if (it != store.end()) it->second.props = std::move(props);               \
  }

GCORE_PPG_OBJECT_ACCESSORS(NodeId, nodes_)
GCORE_PPG_OBJECT_ACCESSORS(EdgeId, edges_)
GCORE_PPG_OBJECT_ACCESSORS(PathId, paths_)

#undef GCORE_PPG_OBJECT_ACCESSORS

std::vector<NodeId> PathPropertyGraph::NodeIds() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, data] : nodes_) out.push_back(id);
  return out;
}

std::vector<EdgeId> PathPropertyGraph::EdgeIds() const {
  std::vector<EdgeId> out;
  out.reserve(edges_.size());
  for (const auto& [id, data] : edges_) out.push_back(id);
  return out;
}

std::vector<PathId> PathPropertyGraph::PathIds() const {
  std::vector<PathId> out;
  out.reserve(paths_.size());
  for (const auto& [id, data] : paths_) out.push_back(id);
  return out;
}

Status PathPropertyGraph::Validate() const {
  for (const auto& [id, data] : edges_) {
    if (!HasNode(data.src) || !HasNode(data.dst)) {
      return Status::InvalidArgument("dangling edge " + gcore::ToString(id));
    }
  }
  for (const auto& [id, data] : paths_) {
    const PathBody& body = data.body;
    if (body.nodes.size() != body.edges.size() + 1) {
      return Status::InvalidArgument("malformed path body " +
                                     gcore::ToString(id));
    }
    for (NodeId n : body.nodes) {
      if (!HasNode(n)) {
        return Status::InvalidArgument("path " + gcore::ToString(id) +
                                       " references non-member node");
      }
    }
    for (size_t i = 0; i < body.edges.size(); ++i) {
      auto it = edges_.find(body.edges[i]);
      if (it == edges_.end()) {
        return Status::InvalidArgument("path " + gcore::ToString(id) +
                                       " references non-member edge");
      }
      const NodeId a = body.nodes[i];
      const NodeId b = body.nodes[i + 1];
      const bool ok = (it->second.src == a && it->second.dst == b) ||
                      (it->second.src == b && it->second.dst == a);
      if (!ok) {
        return Status::InvalidArgument("path " + gcore::ToString(id) +
                                       " is not a valid edge concatenation");
      }
    }
  }
  return Status::OK();
}

std::string PathPropertyGraph::ToString() const {
  std::ostringstream out;
  out << "graph " << (name_.empty() ? "<anonymous>" : name_) << " ("
      << nodes_.size() << " nodes, " << edges_.size() << " edges, "
      << paths_.size() << " paths)\n";
  for (const auto& [id, data] : nodes_) {
    out << "  (" << gcore::ToString(id) << data.labels.ToString();
    if (!data.props.empty()) out << " " << data.props.ToString();
    out << ")\n";
  }
  for (const auto& [id, data] : edges_) {
    out << "  (" << gcore::ToString(data.src) << ")-[" << gcore::ToString(id)
        << data.labels.ToString();
    if (!data.props.empty()) out << " " << data.props.ToString();
    out << "]->(" << gcore::ToString(data.dst) << ")\n";
  }
  for (const auto& [id, data] : paths_) {
    out << "  path " << gcore::ToString(id) << data.labels.ToString();
    if (!data.props.empty()) out << " " << data.props.ToString();
    out << " = [";
    for (size_t i = 0; i < data.body.nodes.size(); ++i) {
      if (i > 0) {
        out << ", " << gcore::ToString(data.body.edges[i - 1]) << ", ";
      }
      out << gcore::ToString(data.body.nodes[i]);
    }
    out << "]\n";
  }
  return out.str();
}

}  // namespace gcore
