#include "graph/stats.h"

#include "graph/snapshot.h"

namespace gcore {

namespace {

/// Buckets of one endpoint-label map an edge contributes to: every label
/// the endpoint carries, plus the "" any-label bucket.
void CountEdgeBuckets(
    const LabelSet& endpoint_labels, const LabelSet& edge_labels,
    std::map<std::string, std::map<std::string, size_t>>* counts) {
  auto count_edge_labels = [&](const std::string& endpoint_label) {
    auto& by_edge_label = (*counts)[endpoint_label];
    ++by_edge_label[""];
    for (const auto& edge_label : edge_labels) ++by_edge_label[edge_label];
  };
  count_edge_labels("");
  for (const auto& label : endpoint_labels) count_edge_labels(label);
}

/// Folds one property value into `stats` (count/distinct handled by the
/// caller, which owns the distinct-tracking sets).
void FoldRange(PropertyStats* stats, const Value& value) {
  if (!value.is_numeric()) return;
  const double v = value.NumericAsDouble();
  if (!stats->has_range) {
    stats->has_range = true;
    stats->min = v;
    stats->max = v;
    return;
  }
  if (v < stats->min) stats->min = v;
  if (v > stats->max) stats->max = v;
}

void FoldPropertyValue(const std::string& key, const Value& value,
                       bool is_new_key,
                       std::map<std::string, PropertyStats>* props,
                       std::map<std::string, std::set<Value>>* values) {
  PropertyStats& stats = (*props)[key];
  if (is_new_key) ++stats.count;
  (*values)[key].insert(value);
  FoldRange(&stats, value);
}

void FoldPropertyMap(const PropertyMap& map,
                     std::map<std::string, PropertyStats>* props,
                     std::map<std::string, std::set<Value>>* values) {
  for (const auto& [key, value_set] : map.entries()) {
    if (value_set.empty()) continue;
    bool first = true;
    for (const auto& value : value_set) {
      FoldPropertyValue(key, value, first, props, values);
      first = false;
    }
  }
}

/// True when the map holds at least one non-empty value set — only then
/// does an object create per-label distribution buckets (so both
/// collection paths create exactly the same buckets).
bool HasAnyProperty(const PropertyMap& map) {
  for (const auto& [key, value_set] : map.entries()) {
    (void)key;
    if (!value_set.empty()) return true;
  }
  return false;
}

void ResolveDistinct(const std::map<std::string, std::set<Value>>& values,
                     std::map<std::string, PropertyStats>* props) {
  for (const auto& [key, set] : values) {
    (*props)[key].distinct = set.size();
  }
}

double AvgDegree(
    const std::map<std::string, std::map<std::string, size_t>>& counts,
    const std::string& endpoint_label, const std::string& edge_label,
    size_t endpoint_count) {
  if (endpoint_count == 0) return 0.0;
  auto by_endpoint = counts.find(endpoint_label);
  if (by_endpoint == counts.end()) return 0.0;
  auto by_edge = by_endpoint->second.find(edge_label);
  if (by_edge == by_endpoint->second.end()) return 0.0;
  return static_cast<double>(by_edge->second) /
         static_cast<double>(endpoint_count);
}

size_t MaxDegree(
    const std::map<std::string, std::map<std::string, size_t>>& maxima,
    const std::string& endpoint_label, const std::string& edge_label) {
  auto by_endpoint = maxima.find(endpoint_label);
  if (by_endpoint == maxima.end()) return 0;
  auto by_edge = by_endpoint->second.find(edge_label);
  return by_edge == by_endpoint->second.end() ? 0 : by_edge->second;
}

const PropertyStats* PropStatsFor(
    const std::map<std::string, std::map<std::string, PropertyStats>>&
        by_label,
    const std::map<std::string, PropertyStats>& global,
    const std::string& label, const std::string& key) {
  if (label.empty()) {
    auto it = global.find(key);
    return it == global.end() ? nullptr : &it->second;
  }
  auto bucket = by_label.find(label);
  if (bucket == by_label.end()) return nullptr;
  auto it = bucket->second.find(key);
  return it == bucket->second.end() ? nullptr : &it->second;
}

/// Folds one typed column into the global and per-label distributions —
/// the columnar mirror of FoldPropertyMap: one count per carrying cell,
/// distinct/range over the cell's values, per-label buckets created
/// exactly for (label of a carrier, key) pairs.
template <typename LabelIdsFn>
void SweepColumn(const GraphSnapshot& snap, const std::string& key,
                 const GraphSnapshot::PropertyColumn& col,
                 LabelIdsFn label_ids_of,
                 std::map<std::string, PropertyStats>* global,
                 std::map<std::string, std::map<std::string, PropertyStats>>*
                     by_label) {
  PropertyStats& g = (*global)[key];
  g.count = col.num_carriers();
  std::set<Value> distinct;
  std::map<uint32_t, std::set<Value>> distinct_by_label;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.AbsentAt(i)) continue;
    const ValueSet values = snap.CellValues(col, i);
    for (const Value& v : values) {
      distinct.insert(v);
      FoldRange(&g, v);
    }
    for (const uint32_t label : label_ids_of(i)) {
      PropertyStats& b = (*by_label)[snap.LabelName(label)][key];
      ++b.count;
      auto& label_distinct = distinct_by_label[label];
      for (const Value& v : values) {
        label_distinct.insert(v);
        FoldRange(&b, v);
      }
    }
  }
  g.distinct = distinct.size();
  for (const auto& [label, set] : distinct_by_label) {
    (*by_label)[snap.LabelName(label)][key].distinct = set.size();
  }
}

}  // namespace

size_t GraphStats::NodesWithLabel(const std::string& label) const {
  auto it = node_label_counts.find(label);
  return it == node_label_counts.end() ? 0 : it->second;
}

size_t GraphStats::EdgesWithLabel(const std::string& label) const {
  auto it = edge_label_counts.find(label);
  return it == edge_label_counts.end() ? 0 : it->second;
}

double GraphStats::AvgOutDegree(const std::string& src_label,
                                const std::string& edge_label) const {
  const size_t sources =
      src_label.empty() ? num_nodes : NodesWithLabel(src_label);
  return AvgDegree(out_edge_counts, src_label, edge_label, sources);
}

double GraphStats::AvgInDegree(const std::string& dst_label,
                               const std::string& edge_label) const {
  const size_t targets =
      dst_label.empty() ? num_nodes : NodesWithLabel(dst_label);
  return AvgDegree(in_edge_counts, dst_label, edge_label, targets);
}

size_t GraphStats::MaxOutDegree(const std::string& src_label,
                                const std::string& edge_label) const {
  return MaxDegree(out_degree_max, src_label, edge_label);
}

size_t GraphStats::MaxInDegree(const std::string& dst_label,
                               const std::string& edge_label) const {
  return MaxDegree(in_degree_max, dst_label, edge_label);
}

const PropertyStats* GraphStats::NodePropStatsFor(
    const std::string& label, const std::string& key) const {
  return PropStatsFor(node_props_by_label, node_props, label, key);
}

const PropertyStats* GraphStats::EdgePropStatsFor(
    const std::string& label, const std::string& key) const {
  return PropStatsFor(edge_props_by_label, edge_props, label, key);
}

GraphStats GraphStats::Collect(const PathPropertyGraph& graph) {
  StatsCollector collector;
  graph.ForEachNode([&](NodeId id) {
    collector.AddNode(graph.Labels(id), graph.Properties(id));
  });
  graph.ForEachEdge([&](EdgeId id, NodeId src, NodeId dst) {
    collector.AddEdge(graph.Labels(id), graph.Properties(id),
                      graph.Labels(src), graph.Labels(dst), src, dst);
  });
  graph.ForEachPath([&](PathId, const PathBody&) { collector.AddPath(); });
  return collector.Finish();
}

GraphStats GraphStats::CollectFromSnapshot(const GraphSnapshot& snap) {
  GraphStats stats;
  stats.num_nodes = snap.num_nodes();
  stats.num_edges = snap.num_edges();
  stats.num_paths = snap.num_paths();

  // Label counts are the sizes of the per-label index spans; entries only
  // for labels that occur on the object class (as the collector produces).
  for (uint32_t l = 0; l < snap.num_labels(); ++l) {
    const auto nodes = snap.NodesWithLabel(l);
    if (!nodes.empty()) {
      stats.node_label_counts[snap.LabelName(l)] = nodes.size();
    }
    const auto edges = snap.EdgesWithLabel(l);
    if (!edges.empty()) {
      stats.edge_label_counts[snap.LabelName(l)] = edges.size();
    }
  }

  for (const auto& [key, col] : snap.node_columns()) {
    SweepColumn(
        snap, key, col, [&](size_t i) {
          return snap.NodeLabelIds(static_cast<DenseNodeIndex>(i));
        },
        &stats.node_props, &stats.node_props_by_label);
  }
  for (const auto& [key, col] : snap.edge_columns()) {
    SweepColumn(
        snap, key, col, [&](size_t i) {
          return snap.EdgeLabelIds(static_cast<DenseEdgeIndex>(i));
        },
        &stats.edge_props, &stats.edge_props_by_label);
  }

  // Edge buckets and per-node degree counters. Label ids are assigned in
  // sorted-name order, so translating a sorted id span gives the LabelSet
  // the collector saw.
  auto names_of = [&](GraphSnapshot::Span<uint32_t> ids) {
    std::vector<std::string> names;
    names.reserve(ids.size());
    for (const uint32_t l : ids) names.push_back(snap.LabelName(l));
    return LabelSet(std::move(names));
  };
  std::vector<LabelSet> node_labels(snap.num_nodes());
  for (size_t n = 0; n < snap.num_nodes(); ++n) {
    node_labels[n] = names_of(snap.NodeLabelIds(static_cast<DenseNodeIndex>(n)));
  }
  using Buckets = std::map<std::string, std::map<std::string, size_t>>;
  std::vector<Buckets> out_deg(snap.num_nodes());
  std::vector<Buckets> in_deg(snap.num_nodes());
  for (size_t e = 0; e < snap.num_edges(); ++e) {
    const LabelSet edge_labels =
        names_of(snap.EdgeLabelIds(static_cast<DenseEdgeIndex>(e)));
    const DenseNodeIndex src = snap.EdgeSrc(static_cast<DenseEdgeIndex>(e));
    const DenseNodeIndex dst = snap.EdgeDst(static_cast<DenseEdgeIndex>(e));
    CountEdgeBuckets(node_labels[src], edge_labels, &stats.out_edge_counts);
    CountEdgeBuckets(node_labels[dst], edge_labels, &stats.in_edge_counts);
    CountEdgeBuckets(node_labels[src], edge_labels, &out_deg[src]);
    CountEdgeBuckets(node_labels[dst], edge_labels, &in_deg[dst]);
  }
  auto fold_maxima = [](const std::vector<Buckets>& per_node,
                        Buckets* maxima) {
    for (const Buckets& buckets : per_node) {
      for (const auto& [endpoint_label, by_edge] : buckets) {
        auto& out = (*maxima)[endpoint_label];
        for (const auto& [edge_label, count] : by_edge) {
          size_t& slot = out[edge_label];
          if (count > slot) slot = count;
        }
      }
    }
  };
  fold_maxima(out_deg, &stats.out_degree_max);
  fold_maxima(in_deg, &stats.in_degree_max);
  return stats;
}

void StatsCollector::AddNode(const LabelSet& labels,
                             const PropertyMap& props) {
  ++stats_.num_nodes;
  for (const auto& label : labels) ++stats_.node_label_counts[label];
  FoldPropertyMap(props, &stats_.node_props, &node_values_.global);
  if (HasAnyProperty(props)) {
    for (const auto& label : labels) {
      FoldPropertyMap(props, &stats_.node_props_by_label[label],
                      &node_values_.by_label[label]);
    }
  }
}

void StatsCollector::AddEdge(const LabelSet& edge_labels,
                             const PropertyMap& props,
                             const LabelSet& src_labels,
                             const LabelSet& dst_labels, NodeId src,
                             NodeId dst) {
  ++stats_.num_edges;
  for (const auto& label : edge_labels) ++stats_.edge_label_counts[label];
  FoldPropertyMap(props, &stats_.edge_props, &edge_values_.global);
  if (HasAnyProperty(props)) {
    for (const auto& label : edge_labels) {
      FoldPropertyMap(props, &stats_.edge_props_by_label[label],
                      &edge_values_.by_label[label]);
    }
  }
  CountEdgeBuckets(src_labels, edge_labels, &stats_.out_edge_counts);
  CountEdgeBuckets(dst_labels, edge_labels, &stats_.in_edge_counts);
  CountEdgeBuckets(src_labels, edge_labels, &out_degrees_[src.value()]);
  CountEdgeBuckets(dst_labels, edge_labels, &in_degrees_[dst.value()]);
}

void StatsCollector::AddPath() { ++stats_.num_paths; }

void StatsCollector::AddNodePropertyValue(const LabelSet& labels,
                                          const std::string& key,
                                          const Value& value,
                                          bool is_new_key) {
  FoldPropertyValue(key, value, is_new_key, &stats_.node_props,
                    &node_values_.global);
  for (const auto& label : labels) {
    FoldPropertyValue(key, value, is_new_key,
                      &stats_.node_props_by_label[label],
                      &node_values_.by_label[label]);
  }
}

void StatsCollector::AddEdgePropertyValue(const LabelSet& labels,
                                          const std::string& key,
                                          const Value& value,
                                          bool is_new_key) {
  FoldPropertyValue(key, value, is_new_key, &stats_.edge_props,
                    &edge_values_.global);
  for (const auto& label : labels) {
    FoldPropertyValue(key, value, is_new_key,
                      &stats_.edge_props_by_label[label],
                      &edge_values_.by_label[label]);
  }
}

GraphStats StatsCollector::Finish() const {
  GraphStats stats = stats_;
  ResolveDistinct(node_values_.global, &stats.node_props);
  ResolveDistinct(edge_values_.global, &stats.edge_props);
  for (const auto& [label, values] : node_values_.by_label) {
    ResolveDistinct(values, &stats.node_props_by_label[label]);
  }
  for (const auto& [label, values] : edge_values_.by_label) {
    ResolveDistinct(values, &stats.edge_props_by_label[label]);
  }
  // Per-node degree counters fold into the per-bucket maxima; the "" keys
  // make out_degree_max[""][""] the global maximum degree.
  auto fold_maxima =
      [](const DegreeCounts& per_node,
         std::map<std::string, std::map<std::string, size_t>>* maxima) {
        for (const auto& [node, buckets] : per_node) {
          (void)node;
          for (const auto& [endpoint_label, by_edge] : buckets) {
            auto& out = (*maxima)[endpoint_label];
            for (const auto& [edge_label, count] : by_edge) {
              size_t& slot = out[edge_label];
              if (count > slot) slot = count;
            }
          }
        }
      };
  fold_maxima(out_degrees_, &stats.out_degree_max);
  fold_maxima(in_degrees_, &stats.in_degree_max);
  return stats;
}

}  // namespace gcore
