#include "graph/snapshot.h"

#include <algorithm>
#include <cstring>

namespace gcore {

namespace {

/// Ranks mirroring Value::Compare's TypeRank so encoded cells order
/// exactly as materialized Values would.
int RankOfKind(GraphSnapshot::PropKind k) {
  switch (k) {
    case GraphSnapshot::PropKind::kNull:
      return 0;
    case GraphSnapshot::PropKind::kBool:
      return 1;
    case GraphSnapshot::PropKind::kInt:
    case GraphSnapshot::PropKind::kDouble:
      return 2;
    case GraphSnapshot::PropKind::kString:
      return 3;
    case GraphSnapshot::PropKind::kDate:
      return 4;
    default:
      return 5;  // kAbsent/kOverflow never reach the rank comparison
  }
}

int RankOfType(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
    case ValueType::kDate:
      return 4;
  }
  return 5;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

uint64_t EncodeInt(int64_t v) { return static_cast<uint64_t>(v); }

uint64_t EncodeDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

double GraphSnapshot::PropertyColumn::DoubleAt(size_t i) const {
  double v = 0;
  std::memcpy(&v, &slots_[i], sizeof(v));
  return v;
}

GraphSnapshot::GraphSnapshot(const PathPropertyGraph& graph) : adj_(graph) {
  InternLabels(graph);
  BuildEdges(graph);
  BuildLabelTopology(graph);
  BuildPropertyColumns(graph);
}

void GraphSnapshot::InternLabels(const PathPropertyGraph& graph) {
  // Ids in sorted-name order: a LabelSet (sorted by name) translates to
  // a sorted id list, so per-object spans stay binary-searchable.
  graph.ForEachNode([&](NodeId id) {
    for (const auto& l : graph.Labels(id)) label_index_.emplace(l, 0);
  });
  graph.ForEachEdge([&](EdgeId id, NodeId, NodeId) {
    for (const auto& l : graph.Labels(id)) label_index_.emplace(l, 0);
  });
  label_names_.reserve(label_index_.size());
  for (auto& [name, id] : label_index_) {
    id = static_cast<uint32_t>(label_names_.size());
    label_names_.push_back(name);
  }
}

uint32_t GraphSnapshot::LabelId(const std::string& name) const {
  auto it = label_index_.find(name);
  return it == label_index_.end() ? kNoLabel : it->second;
}

void GraphSnapshot::BuildEdges(const PathPropertyGraph& graph) {
  edge_ids_.reserve(graph.NumEdges());
  edge_src_.reserve(graph.NumEdges());
  edge_dst_.reserve(graph.NumEdges());
  graph.ForEachEdge([&](EdgeId id, NodeId src, NodeId dst) {
    edge_ids_.push_back(id);  // ForEachEdge visits ascending by id
    edge_src_.push_back(adj_.IndexOf(src));
    edge_dst_.push_back(adj_.IndexOf(dst));
  });
}

DenseEdgeIndex GraphSnapshot::EdgeIndexOf(EdgeId id) const {
  auto it = std::lower_bound(edge_ids_.begin(), edge_ids_.end(), id);
  return static_cast<DenseEdgeIndex>(it - edge_ids_.begin());
}

DenseEdgeIndex GraphSnapshot::FindEdge(EdgeId id) const {
  auto it = std::lower_bound(edge_ids_.begin(), edge_ids_.end(), id);
  if (it == edge_ids_.end() || !(*it == id)) return kNoEdge;
  return static_cast<DenseEdgeIndex>(it - edge_ids_.begin());
}

namespace {

/// Fills the two CSRs linking objects and labels: per-object sorted
/// label-id spans, and per-label ascending object-index lists.
template <typename ForEachLabels>
void BuildLabelCsr(size_t num_objects, size_t num_labels,
                   ForEachLabels for_each_labels,
                   std::vector<uint32_t>* obj_offsets,
                   std::vector<uint32_t>* obj_ids,
                   std::vector<uint32_t>* label_offsets,
                   std::vector<uint32_t>* label_objs) {
  obj_offsets->assign(num_objects + 1, 0);
  std::vector<uint32_t> label_counts(num_labels, 0);
  for_each_labels([&](size_t obj, uint32_t label) {
    ++(*obj_offsets)[obj + 1];
    ++label_counts[label];
  });
  for (size_t i = 0; i < num_objects; ++i) {
    (*obj_offsets)[i + 1] += (*obj_offsets)[i];
  }
  obj_ids->assign(obj_offsets->back(), 0);
  label_offsets->assign(num_labels + 1, 0);
  for (size_t l = 0; l < num_labels; ++l) {
    (*label_offsets)[l + 1] = (*label_offsets)[l] + label_counts[l];
  }
  label_objs->assign(label_offsets->back(), 0);
  std::vector<uint32_t> obj_fill(num_objects, 0);
  std::vector<uint32_t> label_fill(num_labels, 0);
  for_each_labels([&](size_t obj, uint32_t label) {
    // Objects are visited in ascending dense order and labels in
    // ascending id order, so both CSRs come out sorted.
    (*obj_ids)[(*obj_offsets)[obj] + obj_fill[obj]++] = label;
    (*label_objs)[(*label_offsets)[label] + label_fill[label]++] =
        static_cast<uint32_t>(obj);
  });
}

}  // namespace

void GraphSnapshot::BuildLabelTopology(const PathPropertyGraph& graph) {
  BuildLabelCsr(
      num_nodes(), num_labels(),
      [&](auto emit) {
        for (size_t n = 0; n < num_nodes(); ++n) {
          for (const auto& l : graph.Labels(adj_.IdOf(
                   static_cast<DenseNodeIndex>(n)))) {
            emit(n, label_index_.at(l));
          }
        }
      },
      &node_label_offsets_, &node_label_ids_, &label_node_offsets_,
      &label_nodes_);
  BuildLabelCsr(
      num_edges(), num_labels(),
      [&](auto emit) {
        for (size_t e = 0; e < num_edges(); ++e) {
          for (const auto& l : graph.Labels(edge_ids_[e])) {
            emit(e, label_index_.at(l));
          }
        }
      },
      &edge_label_offsets_, &edge_label_ids_, &label_edge_offsets_,
      &label_edges_);
}

bool GraphSnapshot::NodeHasLabel(DenseNodeIndex n, uint32_t label) const {
  const auto span = NodeLabelIds(n);
  return std::binary_search(span.begin(), span.end(), label);
}

bool GraphSnapshot::EdgeHasLabel(DenseEdgeIndex e, uint32_t label) const {
  const auto span = EdgeLabelIds(e);
  return std::binary_search(span.begin(), span.end(), label);
}

void GraphSnapshot::EncodeCell(const ValueSet& values, PropertyColumn* col,
                               size_t i) {
  if (values.empty()) return;  // kAbsent (PropertyMap erases empties)
  ++col->num_carriers_;
  if (values.is_singleton()) {
    const Value& v = values.single();
    switch (v.type()) {
      case ValueType::kNull:
        col->kinds_[i] = static_cast<uint8_t>(PropKind::kNull);
        return;
      case ValueType::kBool:
        col->kinds_[i] = static_cast<uint8_t>(PropKind::kBool);
        col->slots_[i] = v.AsBool() ? 1 : 0;
        return;
      case ValueType::kInt:
        col->kinds_[i] = static_cast<uint8_t>(PropKind::kInt);
        col->slots_[i] = EncodeInt(v.AsInt());
        return;
      case ValueType::kDouble:
        col->kinds_[i] = static_cast<uint8_t>(PropKind::kDouble);
        col->slots_[i] = EncodeDouble(v.AsDouble());
        return;
      case ValueType::kString: {
        auto [it, fresh] = string_index_.emplace(
            v.AsString(), static_cast<uint32_t>(strings_.size()));
        if (fresh) strings_.push_back(v.AsString());
        col->kinds_[i] = static_cast<uint8_t>(PropKind::kString);
        col->slots_[i] = it->second;
        return;
      }
      case ValueType::kDate:
        // Epoch days round-trip only for real calendar dates; anything
        // else keeps its exact Value out of line.
        if (v.AsDate().IsValid()) {
          col->kinds_[i] = static_cast<uint8_t>(PropKind::kDate);
          col->slots_[i] = EncodeInt(v.AsDate().ToEpochDays());
          return;
        }
        break;
    }
  }
  col->kinds_[i] = static_cast<uint8_t>(PropKind::kOverflow);
  col->slots_[i] = col->overflow_.size();
  col->overflow_.push_back(values);
}

void GraphSnapshot::BuildPropertyColumns(const PathPropertyGraph& graph) {
  auto column_of = [](std::map<std::string, PropertyColumn>* columns,
                      const std::string& key,
                      size_t num_objects) -> PropertyColumn* {
    auto [it, fresh] = columns->try_emplace(key);
    if (fresh) {
      it->second.kinds_.assign(num_objects, 0);  // kAbsent
      it->second.slots_.assign(num_objects, 0);
    }
    return &it->second;
  };
  for (size_t n = 0; n < num_nodes(); ++n) {
    const auto& props =
        graph.Properties(adj_.IdOf(static_cast<DenseNodeIndex>(n)));
    for (const auto& [key, values] : props.entries()) {
      EncodeCell(values, column_of(&node_columns_, key, num_nodes()), n);
    }
  }
  for (size_t e = 0; e < num_edges(); ++e) {
    for (const auto& [key, values] : graph.Properties(edge_ids_[e]).entries()) {
      EncodeCell(values, column_of(&edge_columns_, key, num_edges()), e);
    }
  }
}

const GraphSnapshot::PropertyColumn* GraphSnapshot::NodeColumn(
    const std::string& key) const {
  auto it = node_columns_.find(key);
  return it == node_columns_.end() ? nullptr : &it->second;
}

const GraphSnapshot::PropertyColumn* GraphSnapshot::EdgeColumn(
    const std::string& key) const {
  auto it = edge_columns_.find(key);
  return it == edge_columns_.end() ? nullptr : &it->second;
}

uint32_t GraphSnapshot::InternedString(const std::string& s) const {
  auto it = string_index_.find(s);
  return it == string_index_.end() ? kNoString : it->second;
}

int GraphSnapshot::CompareCellSingleton(const PropertyColumn& col, size_t i,
                                        const Value& v, bool* ok) const {
  const PropKind kind = col.KindAt(i);
  switch (kind) {
    case PropKind::kAbsent:
      *ok = false;
      return 0;
    case PropKind::kOverflow: {
      const ValueSet& s = col.OverflowAt(i);
      if (!s.is_singleton()) {
        *ok = false;
        return 0;
      }
      *ok = true;
      return s.single().Compare(v);
    }
    default:
      break;
  }
  *ok = true;
  const int rl = RankOfKind(kind);
  const int rr = RankOfType(v.type());
  if (rl != rr) return rl < rr ? -1 : 1;
  switch (kind) {
    case PropKind::kNull:
      return 0;
    case PropKind::kBool:
      return Cmp(col.BoolAt(i), v.AsBool());
    case PropKind::kInt:
      // Int-int compares exactly; mixed numerics through double, as
      // Value::Compare does.
      if (v.is_int()) return Cmp(col.IntAt(i), v.AsInt());
      return Cmp(static_cast<double>(col.IntAt(i)), v.NumericAsDouble());
    case PropKind::kDouble:
      return Cmp(col.DoubleAt(i), v.NumericAsDouble());
    case PropKind::kString: {
      const int c = StringAt(col.StringIdAt(i)).compare(v.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case PropKind::kDate:
      return Cmp(col.DateDaysAt(i), v.AsDate().ToEpochDays());
    default:
      return 0;  // unreachable
  }
}

bool GraphSnapshot::CellEqualsSingleton(const PropertyColumn& col, size_t i,
                                        const Value& v) const {
  // String equality short-circuits on pool ids (the common pushed-filter
  // case): equal strings share one id by construction.
  if (col.KindAt(i) == PropKind::kString && v.is_string()) {
    return StringAt(col.StringIdAt(i)) == v.AsString();
  }
  bool ok = false;
  const int cmp = CompareCellSingleton(col, i, v, &ok);
  return ok && cmp == 0;
}

bool GraphSnapshot::CellContains(const PropertyColumn& col, size_t i,
                                 const Value& v) const {
  if (col.KindAt(i) == PropKind::kOverflow) {
    return col.OverflowAt(i).Contains(v);
  }
  return CellEqualsSingleton(col, i, v);
}

ValueSet GraphSnapshot::CellValues(const PropertyColumn& col,
                                   size_t i) const {
  switch (col.KindAt(i)) {
    case PropKind::kAbsent:
      return ValueSet();
    case PropKind::kNull:
      return ValueSet(Value::Null());
    case PropKind::kBool:
      return ValueSet(Value::Bool(col.BoolAt(i)));
    case PropKind::kInt:
      return ValueSet(Value::Int(col.IntAt(i)));
    case PropKind::kDouble:
      return ValueSet(Value::Double(col.DoubleAt(i)));
    case PropKind::kString:
      return ValueSet(Value::String(StringAt(col.StringIdAt(i))));
    case PropKind::kDate:
      return ValueSet(Value::OfDate(Date::FromEpochDays(col.DateDaysAt(i))));
    case PropKind::kOverflow:
      return col.OverflowAt(i);
  }
  return ValueSet();
}

}  // namespace gcore
