#include "graph/snapshot.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <numeric>
#include <unordered_map>

namespace gcore {

namespace {

/// Ranks mirroring Value::Compare's TypeRank so encoded cells order
/// exactly as materialized Values would.
int RankOfKind(GraphSnapshot::PropKind k) {
  switch (k) {
    case GraphSnapshot::PropKind::kNull:
      return 0;
    case GraphSnapshot::PropKind::kBool:
      return 1;
    case GraphSnapshot::PropKind::kInt:
    case GraphSnapshot::PropKind::kDouble:
      return 2;
    case GraphSnapshot::PropKind::kString:
      return 3;
    case GraphSnapshot::PropKind::kDate:
      return 4;
    default:
      return 5;  // kAbsent/kOverflow never reach the rank comparison
  }
}

int RankOfType(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
    case ValueType::kDate:
      return 4;
  }
  return 5;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

uint64_t EncodeInt(int64_t v) { return static_cast<uint64_t>(v); }

uint64_t EncodeDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// --- arena layout -------------------------------------------------------------
//
// The arena is one contiguous buffer: an ArenaHeader, a region table of
// kNumRegions (offset, size) pairs, then the regions themselves, each
// 8-byte aligned. Fixed-stride regions are raw little-endian arrays read
// in place; the *Blob/Overflow/Paths regions are byte-encoded and decoded
// by the bounds-checked ByteReader below. Bump kArenaVersion on any
// layout change — there is no cross-version migration, a mismatched image
// is rejected and must be re-frozen from its source graph.

enum Region : uint32_t {
  kRNodeIds = 0,       // NodeId[num_nodes], ascending
  kROutOffsets,        // uint32[num_nodes + 1]
  kROutEntries,        // AdjacencyEntry[out_offsets[num_nodes]]
  kRInOffsets,         // uint32[num_nodes + 1]
  kRInEntries,         // AdjacencyEntry[in_offsets[num_nodes]]
  kREdgeIds,           // EdgeId[num_edges], ascending
  kREdgeSrc,           // uint32[num_edges]
  kREdgeDst,           // uint32[num_edges]
  kRLabelNameOffsets,  // uint64[num_labels + 1] into kRLabelNameBlob
  kRLabelNameBlob,     // label names, sorted, concatenated
  kRNodeLabelOffsets,  // uint32[num_nodes + 1]
  kRNodeLabelIds,      // uint32[...], per-object sorted label ids
  kREdgeLabelOffsets,  // uint32[num_edges + 1]
  kREdgeLabelIds,      // uint32[...]
  kRLabelNodeOffsets,  // uint32[num_labels + 1]
  kRLabelNodes,        // uint32[...], per-label ascending node indices
  kRLabelEdgeOffsets,  // uint32[num_labels + 1]
  kRLabelEdges,        // uint32[...]
  kRStringOffsets,     // uint64[num_strings + 1] into kRStringBlob
  kRStringBlob,        // pool strings, sorted by content, concatenated
  kRNodeColKeyOffsets, // uint64[num_node_columns + 1] into the key blob
  kRNodeColKeyBlob,    // column keys, sorted, concatenated
  kRNodeColKinds,      // uint8[num_node_columns * num_nodes]
  kRNodeColSlots,      // uint64[num_node_columns * num_nodes]
  kRNodeColCarriers,   // uint64[num_node_columns]
  kRNodeOverflow,      // byte-encoded per-column ValueSet lists
  kREdgeColKeyOffsets, // uint64[num_edge_columns + 1]
  kREdgeColKeyBlob,    // column keys, sorted, concatenated
  kREdgeColKinds,      // uint8[num_edge_columns * num_edges]
  kREdgeColSlots,      // uint64[num_edge_columns * num_edges]
  kREdgeColCarriers,   // uint64[num_edge_columns]
  kREdgeOverflow,      // byte-encoded per-column ValueSet lists
  kRPaths,             // byte-encoded stored paths (δ, labels, properties)
  kNumRegions,
};

constexpr uint64_t kArenaMagic = 0x31'50414E534347ULL;  // "GCSNAP1\0"
constexpr uint32_t kArenaVersion = 1;

struct ArenaRegionEntry {
  uint64_t offset = 0;
  uint64_t size = 0;
};

struct ArenaHeader {
  uint64_t magic = kArenaMagic;
  uint32_t version = kArenaVersion;
  uint32_t region_count = kNumRegions;
  uint64_t total_size = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t num_labels = 0;
  uint64_t num_strings = 0;
  uint64_t num_paths = 0;
  uint64_t num_node_columns = 0;
  uint64_t num_edge_columns = 0;
  ArenaRegionEntry regions[kNumRegions];
};

size_t Align8(size_t n) { return (n + 7) & ~size_t{7}; }

// --- byte codec for the variable-encoded regions ------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Raw(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }
  size_t size() const { return bytes_.size(); }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked sequential reader: every accessor returns 0 and latches
/// ok() == false on overrun, so decoding a corrupt region degrades into a
/// detectable failure instead of an out-of-bounds read.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : p_(data), end_(data + size) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  void Raw(void* out, size_t size) {
    if (!ok_ || static_cast<size_t>(end_ - p_) < size) {
      ok_ = false;
      std::memset(out, 0, size);
      return;
    }
    std::memcpy(out, p_, size);
    p_ += size;
  }
  bool ok() const { return ok_; }
  bool AtEnd() const { return p_ == end_; }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

// --- freeze-time state --------------------------------------------------------

/// Everything the freeze gathers from the PPG before packing the arena.
struct FreezeState {
  AdjacencyIndex adj;  // owned mode; packed through adj.view()

  std::vector<EdgeId> edge_ids;
  std::vector<uint32_t> edge_src;
  std::vector<uint32_t> edge_dst;

  std::map<std::string, uint32_t> label_index;
  std::vector<std::string> label_names;
  std::vector<uint32_t> node_label_offsets, node_label_ids;
  std::vector<uint32_t> edge_label_offsets, edge_label_ids;
  std::vector<uint32_t> label_node_offsets, label_nodes;
  std::vector<uint32_t> label_edge_offsets, label_edges;

  struct Column {
    std::vector<uint8_t> kinds;
    std::vector<uint64_t> slots;
    std::vector<ValueSet> overflow;
    uint64_t num_carriers = 0;
  };
  std::map<std::string, Column> node_columns;
  std::map<std::string, Column> edge_columns;

  // String pool in first-encounter order; ids are remapped into sorted
  // order at pack time (the arena's InternedString is a binary search).
  std::vector<std::string> strings;
  std::unordered_map<std::string, uint32_t> string_index;

  struct PathRec {
    PathId id;
    const PathBody* body = nullptr;
    std::vector<uint32_t> label_ids;  // sorted (ids follow name order)
    std::vector<std::pair<uint32_t, const ValueSet*>> props;  // key pool id
  };
  std::vector<PathRec> paths;

  uint32_t Intern(const std::string& s) {
    auto [it, fresh] =
        string_index.emplace(s, static_cast<uint32_t>(strings.size()));
    if (fresh) strings.push_back(s);
    return it->second;
  }
};

/// Fills the two CSRs linking objects and labels: per-object sorted
/// label-id spans, and per-label ascending object-index lists.
template <typename ForEachLabels>
void BuildLabelCsr(size_t num_objects, size_t num_labels,
                   ForEachLabels for_each_labels,
                   std::vector<uint32_t>* obj_offsets,
                   std::vector<uint32_t>* obj_ids,
                   std::vector<uint32_t>* label_offsets,
                   std::vector<uint32_t>* label_objs) {
  obj_offsets->assign(num_objects + 1, 0);
  std::vector<uint32_t> label_counts(num_labels, 0);
  for_each_labels([&](size_t obj, uint32_t label) {
    ++(*obj_offsets)[obj + 1];
    ++label_counts[label];
  });
  for (size_t i = 0; i < num_objects; ++i) {
    (*obj_offsets)[i + 1] += (*obj_offsets)[i];
  }
  obj_ids->assign(obj_offsets->back(), 0);
  label_offsets->assign(num_labels + 1, 0);
  for (size_t l = 0; l < num_labels; ++l) {
    (*label_offsets)[l + 1] = (*label_offsets)[l] + label_counts[l];
  }
  label_objs->assign(label_offsets->back(), 0);
  std::vector<uint32_t> obj_fill(num_objects, 0);
  std::vector<uint32_t> label_fill(num_labels, 0);
  for_each_labels([&](size_t obj, uint32_t label) {
    // Objects are visited in ascending dense order and labels in
    // ascending id order, so both CSRs come out sorted.
    (*obj_ids)[(*obj_offsets)[obj] + obj_fill[obj]++] = label;
    (*label_objs)[(*label_offsets)[label] + label_fill[label]++] =
        static_cast<uint32_t>(obj);
  });
}

/// Encodes one value set into (kind, slot), appending heavy sets to the
/// column's overflow list and interning strings into the pool.
void EncodeCell(const ValueSet& values, FreezeState* fs,
                FreezeState::Column* col, size_t i) {
  if (values.empty()) return;  // kAbsent (PropertyMap erases empties)
  using PropKind = GraphSnapshot::PropKind;
  ++col->num_carriers;
  if (values.is_singleton()) {
    const Value& v = values.single();
    switch (v.type()) {
      case ValueType::kNull:
        col->kinds[i] = static_cast<uint8_t>(PropKind::kNull);
        return;
      case ValueType::kBool:
        col->kinds[i] = static_cast<uint8_t>(PropKind::kBool);
        col->slots[i] = v.AsBool() ? 1 : 0;
        return;
      case ValueType::kInt:
        col->kinds[i] = static_cast<uint8_t>(PropKind::kInt);
        col->slots[i] = EncodeInt(v.AsInt());
        return;
      case ValueType::kDouble:
        col->kinds[i] = static_cast<uint8_t>(PropKind::kDouble);
        col->slots[i] = EncodeDouble(v.AsDouble());
        return;
      case ValueType::kString:
        col->kinds[i] = static_cast<uint8_t>(PropKind::kString);
        col->slots[i] = fs->Intern(v.AsString());
        return;
      case ValueType::kDate:
        // Epoch days round-trip only for real calendar dates; anything
        // else keeps its exact Value out of line.
        if (v.AsDate().IsValid()) {
          col->kinds[i] = static_cast<uint8_t>(PropKind::kDate);
          col->slots[i] = EncodeInt(v.AsDate().ToEpochDays());
          return;
        }
        break;
    }
  }
  // Overflow strings join the pool too: they serialize as pool ids, and
  // string-literal pre-resolution (InternedString) stays conservative —
  // extra pool members can only turn a miss into a valid id.
  for (const Value& v : values) {
    if (v.is_string()) fs->Intern(v.AsString());
  }
  col->kinds[i] = static_cast<uint8_t>(PropKind::kOverflow);
  col->slots[i] = col->overflow.size();
  col->overflow.push_back(values);
}

void GatherFromGraph(const PathPropertyGraph& graph, FreezeState* fs) {
  fs->adj = AdjacencyIndex(graph);
  const size_t num_nodes = fs->adj.num_nodes();

  fs->edge_ids.reserve(graph.NumEdges());
  fs->edge_src.reserve(graph.NumEdges());
  fs->edge_dst.reserve(graph.NumEdges());
  graph.ForEachEdge([&](EdgeId id, NodeId src, NodeId dst) {
    fs->edge_ids.push_back(id);  // ForEachEdge visits ascending by id
    fs->edge_src.push_back(fs->adj.IndexOf(src));
    fs->edge_dst.push_back(fs->adj.IndexOf(dst));
  });
  const size_t num_edges = fs->edge_ids.size();

  // Label ids in sorted-name order: a LabelSet (sorted by name) then
  // translates to a sorted id list, so per-object spans stay
  // binary-searchable. Path labels intern too (they serialize with the
  // path region); path-only labels simply have empty node/edge spans.
  graph.ForEachNode([&](NodeId id) {
    for (const auto& l : graph.Labels(id)) fs->label_index.emplace(l, 0);
  });
  graph.ForEachEdge([&](EdgeId id, NodeId, NodeId) {
    for (const auto& l : graph.Labels(id)) fs->label_index.emplace(l, 0);
  });
  graph.ForEachPath([&](PathId id, const PathBody&) {
    for (const auto& l : graph.Labels(id)) fs->label_index.emplace(l, 0);
  });
  fs->label_names.reserve(fs->label_index.size());
  for (auto& [name, id] : fs->label_index) {
    id = static_cast<uint32_t>(fs->label_names.size());
    fs->label_names.push_back(name);
  }
  const size_t num_labels = fs->label_names.size();

  BuildLabelCsr(
      num_nodes, num_labels,
      [&](auto emit) {
        for (size_t n = 0; n < num_nodes; ++n) {
          for (const auto& l : graph.Labels(fs->adj.IdOf(
                   static_cast<DenseNodeIndex>(n)))) {
            emit(n, fs->label_index.at(l));
          }
        }
      },
      &fs->node_label_offsets, &fs->node_label_ids, &fs->label_node_offsets,
      &fs->label_nodes);
  BuildLabelCsr(
      num_edges, num_labels,
      [&](auto emit) {
        for (size_t e = 0; e < num_edges; ++e) {
          for (const auto& l : graph.Labels(fs->edge_ids[e])) {
            emit(e, fs->label_index.at(l));
          }
        }
      },
      &fs->edge_label_offsets, &fs->edge_label_ids, &fs->label_edge_offsets,
      &fs->label_edges);

  auto column_of = [](std::map<std::string, FreezeState::Column>* columns,
                      const std::string& key,
                      size_t num_objects) -> FreezeState::Column* {
    auto [it, fresh] = columns->try_emplace(key);
    if (fresh) {
      it->second.kinds.assign(num_objects, 0);  // kAbsent
      it->second.slots.assign(num_objects, 0);
    }
    return &it->second;
  };
  for (size_t n = 0; n < num_nodes; ++n) {
    const auto& props =
        graph.Properties(fs->adj.IdOf(static_cast<DenseNodeIndex>(n)));
    for (const auto& [key, values] : props.entries()) {
      EncodeCell(values, fs, column_of(&fs->node_columns, key, num_nodes), n);
    }
  }
  for (size_t e = 0; e < num_edges; ++e) {
    for (const auto& [key, values] :
         graph.Properties(fs->edge_ids[e]).entries()) {
      EncodeCell(values, fs, column_of(&fs->edge_columns, key, num_edges), e);
    }
  }

  graph.ForEachPath([&](PathId id, const PathBody& body) {
    FreezeState::PathRec rec;
    rec.id = id;
    rec.body = &body;
    for (const auto& l : graph.Labels(id)) {
      rec.label_ids.push_back(fs->label_index.at(l));
    }
    for (const auto& [key, values] : graph.Properties(id).entries()) {
      rec.props.emplace_back(fs->Intern(key), &values);
      for (const Value& v : values) {
        if (v.is_string()) fs->Intern(v.AsString());
      }
    }
    fs->paths.push_back(std::move(rec));
  });
}

// --- packing ------------------------------------------------------------------

/// Serializes one ValueSet. Strings reference the *final* (sorted) pool
/// ids; dates keep their raw (year, month, day) triple so non-calendar
/// dates — which epoch days cannot represent injectively — round-trip
/// exactly.
void EncodeValueSet(const ValueSet& values, const FreezeState& fs,
                    const std::vector<uint32_t>& remap, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(values.size()));
  for (const Value& v : values) {
    w->U8(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        w->U8(v.AsBool() ? 1 : 0);
        break;
      case ValueType::kInt:
        w->U64(EncodeInt(v.AsInt()));
        break;
      case ValueType::kDouble:
        w->U64(EncodeDouble(v.AsDouble()));
        break;
      case ValueType::kString:
        w->U64(remap[fs.string_index.at(v.AsString())]);
        break;
      case ValueType::kDate: {
        const Date& d = v.AsDate();
        w->U32(static_cast<uint32_t>(d.year));
        w->U8(d.month);
        w->U8(d.day);
        break;
      }
    }
  }
}

std::vector<uint8_t> EncodeOverflow(
    const std::map<std::string, FreezeState::Column>& columns,
    const FreezeState& fs, const std::vector<uint32_t>& remap) {
  ByteWriter w;
  w.U64(columns.size());
  for (const auto& [key, col] : columns) {
    w.U64(col.overflow.size());
    for (const ValueSet& set : col.overflow) {
      EncodeValueSet(set, fs, remap, &w);
    }
  }
  return w.Take();
}

std::vector<uint8_t> EncodePaths(const FreezeState& fs,
                                 const std::vector<uint32_t>& remap) {
  ByteWriter w;
  for (const auto& rec : fs.paths) {
    w.U64(rec.id.value());
    w.U32(static_cast<uint32_t>(rec.label_ids.size()));
    for (const uint32_t l : rec.label_ids) w.U32(l);
    w.U64(rec.body->nodes.size());
    for (const NodeId n : rec.body->nodes) w.U64(n.value());
    w.U64(rec.body->edges.size());
    for (const EdgeId e : rec.body->edges) w.U64(e.value());
    w.U32(static_cast<uint32_t>(rec.props.size()));
    for (const auto& [key_id, values] : rec.props) {
      w.U64(remap[key_id]);
      EncodeValueSet(*values, fs, remap, &w);
    }
  }
  return w.Take();
}

/// Offsets + concatenated blob for a list of strings (label names, pool
/// strings, column keys).
void StringTableSizes(const std::vector<std::string>& strings,
                      size_t* offsets_bytes, size_t* blob_bytes) {
  *offsets_bytes = (strings.size() + 1) * sizeof(uint64_t);
  size_t total = 0;
  for (const auto& s : strings) total += s.size();
  *blob_bytes = total;
}

std::vector<uint8_t> PackArena(const FreezeState& fs) {
  const AdjacencyIndex::View adj = fs.adj.view();
  const size_t num_nodes = adj.num_nodes;
  const size_t num_edges = fs.edge_ids.size();
  const size_t num_labels = fs.label_names.size();
  const size_t num_strings = fs.strings.size();

  // Final string-pool ids: sorted by content, so the attached image can
  // binary-search the offset table instead of carrying a hash map.
  std::vector<uint32_t> order(num_strings);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return fs.strings[a] < fs.strings[b];
  });
  std::vector<uint32_t> remap(num_strings);
  std::vector<std::string> sorted_strings(num_strings);
  for (uint32_t new_id = 0; new_id < num_strings; ++new_id) {
    remap[order[new_id]] = new_id;
    sorted_strings[new_id] = fs.strings[order[new_id]];
  }

  std::vector<std::string> node_keys, edge_keys;
  node_keys.reserve(fs.node_columns.size());
  for (const auto& [key, col] : fs.node_columns) node_keys.push_back(key);
  edge_keys.reserve(fs.edge_columns.size());
  for (const auto& [key, col] : fs.edge_columns) edge_keys.push_back(key);

  const std::vector<uint8_t> node_overflow =
      EncodeOverflow(fs.node_columns, fs, remap);
  const std::vector<uint8_t> edge_overflow =
      EncodeOverflow(fs.edge_columns, fs, remap);
  const std::vector<uint8_t> paths = EncodePaths(fs, remap);

  ArenaHeader header;
  header.num_nodes = num_nodes;
  header.num_edges = num_edges;
  header.num_labels = num_labels;
  header.num_strings = num_strings;
  header.num_paths = fs.paths.size();
  header.num_node_columns = fs.node_columns.size();
  header.num_edge_columns = fs.edge_columns.size();

  size_t label_off_bytes, label_blob_bytes;
  StringTableSizes(fs.label_names, &label_off_bytes, &label_blob_bytes);
  size_t string_off_bytes, string_blob_bytes;
  StringTableSizes(sorted_strings, &string_off_bytes, &string_blob_bytes);
  size_t node_key_off_bytes, node_key_blob_bytes;
  StringTableSizes(node_keys, &node_key_off_bytes, &node_key_blob_bytes);
  size_t edge_key_off_bytes, edge_key_blob_bytes;
  StringTableSizes(edge_keys, &edge_key_off_bytes, &edge_key_blob_bytes);

  const size_t sizes[kNumRegions] = {
      /*kRNodeIds=*/num_nodes * sizeof(NodeId),
      /*kROutOffsets=*/(num_nodes + 1) * sizeof(uint32_t),
      /*kROutEntries=*/adj.out_offsets[num_nodes] * sizeof(AdjacencyEntry),
      /*kRInOffsets=*/(num_nodes + 1) * sizeof(uint32_t),
      /*kRInEntries=*/adj.in_offsets[num_nodes] * sizeof(AdjacencyEntry),
      /*kREdgeIds=*/num_edges * sizeof(EdgeId),
      /*kREdgeSrc=*/num_edges * sizeof(uint32_t),
      /*kREdgeDst=*/num_edges * sizeof(uint32_t),
      /*kRLabelNameOffsets=*/label_off_bytes,
      /*kRLabelNameBlob=*/label_blob_bytes,
      /*kRNodeLabelOffsets=*/fs.node_label_offsets.size() * sizeof(uint32_t),
      /*kRNodeLabelIds=*/fs.node_label_ids.size() * sizeof(uint32_t),
      /*kREdgeLabelOffsets=*/fs.edge_label_offsets.size() * sizeof(uint32_t),
      /*kREdgeLabelIds=*/fs.edge_label_ids.size() * sizeof(uint32_t),
      /*kRLabelNodeOffsets=*/fs.label_node_offsets.size() * sizeof(uint32_t),
      /*kRLabelNodes=*/fs.label_nodes.size() * sizeof(uint32_t),
      /*kRLabelEdgeOffsets=*/fs.label_edge_offsets.size() * sizeof(uint32_t),
      /*kRLabelEdges=*/fs.label_edges.size() * sizeof(uint32_t),
      /*kRStringOffsets=*/string_off_bytes,
      /*kRStringBlob=*/string_blob_bytes,
      /*kRNodeColKeyOffsets=*/node_key_off_bytes,
      /*kRNodeColKeyBlob=*/node_key_blob_bytes,
      /*kRNodeColKinds=*/fs.node_columns.size() * num_nodes,
      /*kRNodeColSlots=*/fs.node_columns.size() * num_nodes * sizeof(uint64_t),
      /*kRNodeColCarriers=*/fs.node_columns.size() * sizeof(uint64_t),
      /*kRNodeOverflow=*/node_overflow.size(),
      /*kREdgeColKeyOffsets=*/edge_key_off_bytes,
      /*kREdgeColKeyBlob=*/edge_key_blob_bytes,
      /*kREdgeColKinds=*/fs.edge_columns.size() * num_edges,
      /*kREdgeColSlots=*/fs.edge_columns.size() * num_edges * sizeof(uint64_t),
      /*kREdgeColCarriers=*/fs.edge_columns.size() * sizeof(uint64_t),
      /*kREdgeOverflow=*/edge_overflow.size(),
      /*kRPaths=*/paths.size(),
  };

  size_t cursor = Align8(sizeof(ArenaHeader));
  for (uint32_t r = 0; r < kNumRegions; ++r) {
    header.regions[r].offset = cursor;
    header.regions[r].size = sizes[r];
    cursor = Align8(cursor + sizes[r]);
  }
  header.total_size = cursor;

  std::vector<uint8_t> arena(cursor, 0);
  auto at = [&](Region r) { return arena.data() + header.regions[r].offset; };
  auto copy = [&](Region r, const void* data, size_t size) {
    if (size > 0) std::memcpy(at(r), data, size);
  };
  auto copy_entries = [&](Region r, const AdjacencyEntry* entries,
                          size_t count) {
    // Field-wise stores into the zeroed buffer keep the struct's padding
    // bytes deterministic (memcpy would carry over whatever the builder's
    // heap held), so identical graphs pack byte-identical arenas.
    AdjacencyEntry* dst = reinterpret_cast<AdjacencyEntry*>(at(r));
    for (size_t i = 0; i < count; ++i) {
      dst[i].neighbor = entries[i].neighbor;
      dst[i].edge_dense = entries[i].edge_dense;
      dst[i].edge = entries[i].edge;
      dst[i].forward = entries[i].forward;
    }
  };
  auto copy_string_table = [&](Region off_r, Region blob_r,
                               const std::vector<std::string>& strings) {
    uint64_t* offsets = reinterpret_cast<uint64_t*>(at(off_r));
    char* blob = reinterpret_cast<char*>(at(blob_r));
    uint64_t pos = 0;
    for (size_t i = 0; i < strings.size(); ++i) {
      offsets[i] = pos;
      std::memcpy(blob + pos, strings[i].data(), strings[i].size());
      pos += strings[i].size();
    }
    offsets[strings.size()] = pos;
  };

  copy(kRNodeIds, adj.node_ids, sizes[kRNodeIds]);
  copy(kROutOffsets, adj.out_offsets, sizes[kROutOffsets]);
  copy_entries(kROutEntries, adj.out_entries, adj.out_offsets[num_nodes]);
  copy(kRInOffsets, adj.in_offsets, sizes[kRInOffsets]);
  copy_entries(kRInEntries, adj.in_entries, adj.in_offsets[num_nodes]);
  copy(kREdgeIds, fs.edge_ids.data(), sizes[kREdgeIds]);
  copy(kREdgeSrc, fs.edge_src.data(), sizes[kREdgeSrc]);
  copy(kREdgeDst, fs.edge_dst.data(), sizes[kREdgeDst]);
  copy_string_table(kRLabelNameOffsets, kRLabelNameBlob, fs.label_names);
  copy(kRNodeLabelOffsets, fs.node_label_offsets.data(),
       sizes[kRNodeLabelOffsets]);
  copy(kRNodeLabelIds, fs.node_label_ids.data(), sizes[kRNodeLabelIds]);
  copy(kREdgeLabelOffsets, fs.edge_label_offsets.data(),
       sizes[kREdgeLabelOffsets]);
  copy(kREdgeLabelIds, fs.edge_label_ids.data(), sizes[kREdgeLabelIds]);
  copy(kRLabelNodeOffsets, fs.label_node_offsets.data(),
       sizes[kRLabelNodeOffsets]);
  copy(kRLabelNodes, fs.label_nodes.data(), sizes[kRLabelNodes]);
  copy(kRLabelEdgeOffsets, fs.label_edge_offsets.data(),
       sizes[kRLabelEdgeOffsets]);
  copy(kRLabelEdges, fs.label_edges.data(), sizes[kRLabelEdges]);
  copy_string_table(kRStringOffsets, kRStringBlob, sorted_strings);

  auto copy_columns = [&](const std::map<std::string, FreezeState::Column>&
                              columns,
                          size_t num_objects, Region key_off_r,
                          Region key_blob_r, Region kinds_r, Region slots_r,
                          Region carriers_r,
                          const std::vector<std::string>& keys) {
    copy_string_table(key_off_r, key_blob_r, keys);
    uint8_t* kinds = at(kinds_r);
    uint64_t* slots = reinterpret_cast<uint64_t*>(at(slots_r));
    uint64_t* carriers = reinterpret_cast<uint64_t*>(at(carriers_r));
    size_t c = 0;
    for (const auto& [key, col] : columns) {
      std::memcpy(kinds + c * num_objects, col.kinds.data(), num_objects);
      uint64_t* col_slots = slots + c * num_objects;
      std::memcpy(col_slots, col.slots.data(),
                  num_objects * sizeof(uint64_t));
      // Inline string cells carry pool ids assigned in first-encounter
      // order during the gather; rewrite them to the sorted-pool ids.
      for (size_t i = 0; i < num_objects; ++i) {
        if (col.kinds[i] ==
            static_cast<uint8_t>(GraphSnapshot::PropKind::kString)) {
          col_slots[i] = remap[col_slots[i]];
        }
      }
      carriers[c] = col.num_carriers;
      ++c;
    }
  };
  copy_columns(fs.node_columns, num_nodes, kRNodeColKeyOffsets,
               kRNodeColKeyBlob, kRNodeColKinds, kRNodeColSlots,
               kRNodeColCarriers, node_keys);
  copy_columns(fs.edge_columns, num_edges, kREdgeColKeyOffsets,
               kREdgeColKeyBlob, kREdgeColKinds, kREdgeColSlots,
               kREdgeColCarriers, edge_keys);
  copy(kRNodeOverflow, node_overflow.data(), node_overflow.size());
  copy(kREdgeOverflow, edge_overflow.data(), edge_overflow.size());
  copy(kRPaths, paths.data(), paths.size());

  std::memcpy(arena.data(), &header, sizeof(header));
  return arena;
}

}  // namespace

// --- attach -------------------------------------------------------------------

double GraphSnapshot::PropertyColumn::DoubleAt(size_t i) const {
  double v = 0;
  std::memcpy(&v, &slots_[i], sizeof(v));
  return v;
}

GraphSnapshot::GraphSnapshot(const PathPropertyGraph& graph) {
  FreezeState fs;
  GatherFromGraph(graph, &fs);
  arena_ = ArenaBuffer::Own(PackArena(fs));
  const Status st = Attach(&graph, /*trusted=*/true);
  assert(st.ok() && "freshly packed arena must attach");
  (void)st;
}

Result<std::shared_ptr<GraphSnapshot>> GraphSnapshot::FromArena(
    ArenaBuffer arena) {
  std::shared_ptr<GraphSnapshot> snap(new GraphSnapshot());
  snap->arena_ = std::move(arena);
  const Status st = snap->Attach(nullptr, /*trusted=*/false);
  if (!st.ok()) return st;
  return snap;
}

namespace {

/// Decodes one ValueSet written by EncodeValueSet. Returns false (via
/// reader state / bounds checks) on malformed input.
bool DecodeValueSet(ByteReader* r, const GraphSnapshot& snap,
                    ValueSet* out) {
  const uint32_t count = r->U32();
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count && r->ok(); ++i) {
    const uint8_t tag = r->U8();
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull:
        values.push_back(Value::Null());
        break;
      case ValueType::kBool:
        values.push_back(Value::Bool(r->U8() != 0));
        break;
      case ValueType::kInt:
        values.push_back(Value::Int(static_cast<int64_t>(r->U64())));
        break;
      case ValueType::kDouble: {
        const uint64_t bits = r->U64();
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        values.push_back(Value::Double(d));
        break;
      }
      case ValueType::kString: {
        const uint64_t id = r->U64();
        if (id >= snap.num_strings()) return false;
        values.push_back(
            Value::String(std::string(snap.StringAt(
                static_cast<uint32_t>(id)))));
        break;
      }
      case ValueType::kDate: {
        Date d;
        d.year = static_cast<int32_t>(r->U32());
        d.month = r->U8();
        d.day = r->U8();
        values.push_back(Value::OfDate(d));
        break;
      }
      default:
        return false;
    }
  }
  if (!r->ok()) return false;
  *out = ValueSet(std::move(values));
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("snapshot arena: " + what);
}

/// Checks that `offsets` (count+1 entries) is monotone and ends at
/// `limit` — the shared shape invariant of every CSR / string table.
template <typename T>
bool OffsetsWellFormed(const T* offsets, size_t count, uint64_t limit) {
  if (offsets[0] != 0) return false;
  for (size_t i = 0; i < count; ++i) {
    if (offsets[i] > offsets[i + 1]) return false;
  }
  return offsets[count] == limit;
}

}  // namespace

Status GraphSnapshot::Attach(const PathPropertyGraph* graph, bool trusted) {
  const uint8_t* base = arena_.data();
  if (arena_.size() < sizeof(ArenaHeader)) {
    return Corrupt("buffer smaller than the header");
  }
  ArenaHeader h;
  std::memcpy(&h, base, sizeof(h));
  if (h.magic != kArenaMagic) return Corrupt("bad magic");
  if (h.version != kArenaVersion) {
    return Corrupt("format version " + std::to_string(h.version) +
                   " (expected " + std::to_string(kArenaVersion) + ")");
  }
  if (h.region_count != kNumRegions) return Corrupt("bad region count");
  if (h.total_size != arena_.size()) return Corrupt("size mismatch");

  for (uint32_t r = 0; r < kNumRegions; ++r) {
    const ArenaRegionEntry& e = h.regions[r];
    if (e.offset % 8 != 0 || e.offset > arena_.size() ||
        e.size > arena_.size() - e.offset) {
      return Corrupt("region " + std::to_string(r) + " out of bounds");
    }
  }
  auto data = [&](Region r) { return base + h.regions[r].offset; };
  auto size = [&](Region r) { return h.regions[r].size; };
  auto expect = [&](Region r, uint64_t bytes) {
    return size(r) == bytes;
  };

  const size_t num_nodes = h.num_nodes;
  num_edges_ = h.num_edges;
  num_strings_ = h.num_strings;
  num_paths_ = h.num_paths;
  const size_t num_labels = h.num_labels;
  const size_t n_cols = h.num_node_columns;
  const size_t e_cols = h.num_edge_columns;

  if (!expect(kRNodeIds, num_nodes * sizeof(NodeId)) ||
      !expect(kROutOffsets, (num_nodes + 1) * sizeof(uint32_t)) ||
      !expect(kRInOffsets, (num_nodes + 1) * sizeof(uint32_t)) ||
      !expect(kREdgeIds, num_edges_ * sizeof(EdgeId)) ||
      !expect(kREdgeSrc, num_edges_ * sizeof(uint32_t)) ||
      !expect(kREdgeDst, num_edges_ * sizeof(uint32_t)) ||
      !expect(kRLabelNameOffsets, (num_labels + 1) * sizeof(uint64_t)) ||
      !expect(kRNodeLabelOffsets, (num_nodes + 1) * sizeof(uint32_t)) ||
      !expect(kREdgeLabelOffsets, (num_edges_ + 1) * sizeof(uint32_t)) ||
      !expect(kRLabelNodeOffsets, (num_labels + 1) * sizeof(uint32_t)) ||
      !expect(kRLabelEdgeOffsets, (num_labels + 1) * sizeof(uint32_t)) ||
      !expect(kRStringOffsets, (num_strings_ + 1) * sizeof(uint64_t)) ||
      !expect(kRNodeColKeyOffsets, (n_cols + 1) * sizeof(uint64_t)) ||
      !expect(kRNodeColKinds, n_cols * num_nodes) ||
      !expect(kRNodeColSlots, n_cols * num_nodes * sizeof(uint64_t)) ||
      !expect(kRNodeColCarriers, n_cols * sizeof(uint64_t)) ||
      !expect(kREdgeColKeyOffsets, (e_cols + 1) * sizeof(uint64_t)) ||
      !expect(kREdgeColKinds, e_cols * num_edges_) ||
      !expect(kREdgeColSlots, e_cols * num_edges_ * sizeof(uint64_t)) ||
      !expect(kREdgeColCarriers, e_cols * sizeof(uint64_t))) {
    return Corrupt("region size disagrees with header counts");
  }

  const uint32_t* out_offsets =
      reinterpret_cast<const uint32_t*>(data(kROutOffsets));
  const uint32_t* in_offsets =
      reinterpret_cast<const uint32_t*>(data(kRInOffsets));
  if (!trusted) {
    if (!OffsetsWellFormed(out_offsets, num_nodes,
                           size(kROutEntries) / sizeof(AdjacencyEntry)) ||
        size(kROutEntries) % sizeof(AdjacencyEntry) != 0 ||
        !OffsetsWellFormed(in_offsets, num_nodes,
                           size(kRInEntries) / sizeof(AdjacencyEntry)) ||
        size(kRInEntries) % sizeof(AdjacencyEntry) != 0) {
      return Corrupt("adjacency CSR malformed");
    }
  }

  AdjacencyIndex::View view;
  view.graph = graph;
  view.node_ids = reinterpret_cast<const NodeId*>(data(kRNodeIds));
  view.num_nodes = num_nodes;
  view.num_edges = num_edges_;
  view.out_offsets = out_offsets;
  view.out_entries =
      reinterpret_cast<const AdjacencyEntry*>(data(kROutEntries));
  view.in_offsets = in_offsets;
  view.in_entries = reinterpret_cast<const AdjacencyEntry*>(data(kRInEntries));
  adj_ = AdjacencyIndex(view);

  edge_ids_ = reinterpret_cast<const EdgeId*>(data(kREdgeIds));
  edge_src_ = reinterpret_cast<const uint32_t*>(data(kREdgeSrc));
  edge_dst_ = reinterpret_cast<const uint32_t*>(data(kREdgeDst));

  // Label names materialize into a small vector (LabelName returns a
  // std::string& to callers building LabelSets).
  const uint64_t* label_offsets =
      reinterpret_cast<const uint64_t*>(data(kRLabelNameOffsets));
  const char* label_blob = reinterpret_cast<const char*>(data(kRLabelNameBlob));
  if (!trusted &&
      !OffsetsWellFormed(label_offsets, num_labels, size(kRLabelNameBlob))) {
    return Corrupt("label name table malformed");
  }
  label_names_.clear();
  label_names_.reserve(num_labels);
  for (size_t l = 0; l < num_labels; ++l) {
    label_names_.emplace_back(label_blob + label_offsets[l],
                              label_offsets[l + 1] - label_offsets[l]);
    if (!trusted && l > 0 && !(label_names_[l - 1] < label_names_[l])) {
      return Corrupt("label names not sorted");
    }
  }

  node_label_offsets_ =
      reinterpret_cast<const uint32_t*>(data(kRNodeLabelOffsets));
  node_label_ids_ = reinterpret_cast<const uint32_t*>(data(kRNodeLabelIds));
  edge_label_offsets_ =
      reinterpret_cast<const uint32_t*>(data(kREdgeLabelOffsets));
  edge_label_ids_ = reinterpret_cast<const uint32_t*>(data(kREdgeLabelIds));
  label_node_offsets_ =
      reinterpret_cast<const uint32_t*>(data(kRLabelNodeOffsets));
  label_nodes_ = reinterpret_cast<const uint32_t*>(data(kRLabelNodes));
  label_edge_offsets_ =
      reinterpret_cast<const uint32_t*>(data(kRLabelEdgeOffsets));
  label_edges_ = reinterpret_cast<const uint32_t*>(data(kRLabelEdges));
  if (!trusted) {
    if (!OffsetsWellFormed(node_label_offsets_, num_nodes,
                           size(kRNodeLabelIds) / sizeof(uint32_t)) ||
        !OffsetsWellFormed(edge_label_offsets_, num_edges_,
                           size(kREdgeLabelIds) / sizeof(uint32_t)) ||
        !OffsetsWellFormed(label_node_offsets_, num_labels,
                           size(kRLabelNodes) / sizeof(uint32_t)) ||
        !OffsetsWellFormed(label_edge_offsets_, num_labels,
                           size(kRLabelEdges) / sizeof(uint32_t))) {
      return Corrupt("label CSR malformed");
    }
    for (size_t i = 0; i < size(kRNodeLabelIds) / sizeof(uint32_t); ++i) {
      if (node_label_ids_[i] >= num_labels) return Corrupt("label id range");
    }
    for (size_t i = 0; i < size(kREdgeLabelIds) / sizeof(uint32_t); ++i) {
      if (edge_label_ids_[i] >= num_labels) return Corrupt("label id range");
    }
    for (size_t i = 0; i < size(kRLabelNodes) / sizeof(uint32_t); ++i) {
      if (label_nodes_[i] >= num_nodes) return Corrupt("node index range");
    }
    for (size_t i = 0; i < size(kRLabelEdges) / sizeof(uint32_t); ++i) {
      if (label_edges_[i] >= num_edges_) return Corrupt("edge index range");
    }
    for (size_t e = 0; e < num_edges_; ++e) {
      if (edge_src_[e] >= num_nodes || edge_dst_[e] >= num_nodes) {
        return Corrupt("edge endpoint range");
      }
    }
  }

  string_offsets_ = reinterpret_cast<const uint64_t*>(data(kRStringOffsets));
  string_blob_ = reinterpret_cast<const char*>(data(kRStringBlob));
  if (!trusted) {
    if (!OffsetsWellFormed(string_offsets_, num_strings_,
                           size(kRStringBlob))) {
      return Corrupt("string pool malformed");
    }
    for (size_t s = 1; s < num_strings_; ++s) {
      if (!(StringAt(static_cast<uint32_t>(s - 1)) <
            StringAt(static_cast<uint32_t>(s)))) {
        return Corrupt("string pool not sorted");
      }
    }
  }

  auto attach_columns =
      [&](size_t n_columns, size_t num_objects, Region key_off_r,
          Region key_blob_r, Region kinds_r, Region slots_r,
          Region carriers_r, Region overflow_r,
          std::vector<std::pair<std::string, PropertyColumn>>* out) -> Status {
    const uint64_t* key_offsets =
        reinterpret_cast<const uint64_t*>(data(key_off_r));
    const char* key_blob = reinterpret_cast<const char*>(data(key_blob_r));
    if (!trusted &&
        !OffsetsWellFormed(key_offsets, n_columns, size(key_blob_r))) {
      return Corrupt("column key table malformed");
    }
    const uint8_t* kinds = data(kinds_r);
    const uint64_t* slots = reinterpret_cast<const uint64_t*>(data(slots_r));
    const uint64_t* carriers =
        reinterpret_cast<const uint64_t*>(data(carriers_r));
    ByteReader overflow(data(overflow_r), size(overflow_r));
    if (overflow.U64() != n_columns) {
      return Corrupt("overflow directory count");
    }
    out->clear();
    out->reserve(n_columns);
    for (size_t c = 0; c < n_columns; ++c) {
      std::string key(key_blob + key_offsets[c],
                      key_offsets[c + 1] - key_offsets[c]);
      if (!trusted && c > 0 && !((*out)[c - 1].first < key)) {
        return Corrupt("column keys not sorted");
      }
      PropertyColumn col;
      col.kinds_ = kinds + c * num_objects;
      col.slots_ = slots + c * num_objects;
      col.size_ = num_objects;
      col.num_carriers_ = carriers[c];
      const uint64_t n_sets = overflow.U64();
      col.overflow_.reserve(n_sets);
      for (uint64_t s = 0; s < n_sets; ++s) {
        ValueSet set;
        if (!DecodeValueSet(&overflow, *this, &set)) {
          return Corrupt("overflow set malformed");
        }
        col.overflow_.push_back(std::move(set));
      }
      if (!trusted) {
        for (size_t i = 0; i < num_objects; ++i) {
          const PropKind k = col.KindAt(i);
          if (k == PropKind::kString && col.slots_[i] >= num_strings_) {
            return Corrupt("string slot range");
          }
          if (k == PropKind::kOverflow &&
              col.slots_[i] >= col.overflow_.size()) {
            return Corrupt("overflow slot range");
          }
        }
      }
      out->emplace_back(std::move(key), std::move(col));
    }
    if (!overflow.ok()) return Corrupt("overflow region truncated");
    return Status::OK();
  };
  Status st = attach_columns(n_cols, num_nodes, kRNodeColKeyOffsets,
                             kRNodeColKeyBlob, kRNodeColKinds, kRNodeColSlots,
                             kRNodeColCarriers, kRNodeOverflow,
                             &node_columns_);
  if (!st.ok()) return st;
  st = attach_columns(e_cols, num_edges_, kREdgeColKeyOffsets,
                      kREdgeColKeyBlob, kREdgeColKinds, kREdgeColSlots,
                      kREdgeColCarriers, kREdgeOverflow, &edge_columns_);
  if (!st.ok()) return st;

  paths_data_ = data(kRPaths);
  paths_size_ = size(kRPaths);
  return Status::OK();
}

void GraphSnapshot::BindGraph(std::shared_ptr<const PathPropertyGraph> graph) {
  bound_graph_ = std::move(graph);
  adj_.set_graph(bound_graph_.get());
}

PathPropertyGraph GraphSnapshot::ReconstructGraph(std::string name) const {
  PathPropertyGraph g(std::move(name));
  for (size_t n = 0; n < num_nodes(); ++n) {
    const NodeId id = adj_.IdOf(static_cast<DenseNodeIndex>(n));
    g.AddNode(id);
    LabelSet labels;
    for (const uint32_t l : NodeLabelIds(static_cast<DenseNodeIndex>(n))) {
      labels.Insert(LabelName(l));
    }
    if (!labels.empty()) g.SetLabels(id, std::move(labels));
    for (const auto& [key, col] : node_columns_) {
      if (col.AbsentAt(n)) continue;
      g.SetProperty(id, key, CellValues(col, n));
    }
  }
  for (size_t e = 0; e < num_edges(); ++e) {
    const EdgeId id = edge_ids_[e];
    const Status st = g.AddEdge(id, adj_.IdOf(edge_src_[e]),
                                adj_.IdOf(edge_dst_[e]));
    assert(st.ok());
    (void)st;
    LabelSet labels;
    for (const uint32_t l : EdgeLabelIds(static_cast<DenseEdgeIndex>(e))) {
      labels.Insert(LabelName(l));
    }
    if (!labels.empty()) g.SetLabels(id, std::move(labels));
    for (const auto& [key, col] : edge_columns_) {
      if (col.AbsentAt(e)) continue;
      g.SetProperty(id, key, CellValues(col, e));
    }
  }
  ByteReader r(paths_data_, paths_size_);
  for (size_t p = 0; p < num_paths_ && r.ok(); ++p) {
    const PathId id(r.U64());
    const uint32_t n_labels = r.U32();
    LabelSet labels;
    for (uint32_t i = 0; i < n_labels; ++i) {
      const uint32_t l = r.U32();
      if (l < num_labels()) labels.Insert(LabelName(l));
    }
    PathBody body;
    const uint64_t n_nodes = r.U64();
    body.nodes.reserve(n_nodes);
    for (uint64_t i = 0; i < n_nodes && r.ok(); ++i) {
      body.nodes.push_back(NodeId(r.U64()));
    }
    const uint64_t n_edges = r.U64();
    body.edges.reserve(n_edges);
    for (uint64_t i = 0; i < n_edges && r.ok(); ++i) {
      body.edges.push_back(EdgeId(r.U64()));
    }
    const uint32_t n_props = r.U32();
    PropertyMap props;
    for (uint32_t i = 0; i < n_props && r.ok(); ++i) {
      const uint64_t key_id = r.U64();
      ValueSet values;
      if (!DecodeValueSet(&r, *this, &values)) break;
      if (key_id < num_strings_) {
        props.Set(std::string(StringAt(static_cast<uint32_t>(key_id))),
                  std::move(values));
      }
    }
    if (!r.ok()) break;
    const Status st = g.AddPath(id, std::move(body));
    assert(st.ok());
    (void)st;
    if (!labels.empty()) g.SetLabels(id, std::move(labels));
    if (!props.empty()) g.SetProperties(id, std::move(props));
  }
  return g;
}

// --- lookups ------------------------------------------------------------------

uint32_t GraphSnapshot::LabelId(const std::string& name) const {
  const auto it =
      std::lower_bound(label_names_.begin(), label_names_.end(), name);
  if (it == label_names_.end() || *it != name) return kNoLabel;
  return static_cast<uint32_t>(it - label_names_.begin());
}

DenseEdgeIndex GraphSnapshot::EdgeIndexOf(EdgeId id) const {
  const EdgeId* end = edge_ids_ + num_edges_;
  const EdgeId* it = std::lower_bound(edge_ids_, end, id);
  return static_cast<DenseEdgeIndex>(it - edge_ids_);
}

DenseEdgeIndex GraphSnapshot::FindEdge(EdgeId id) const {
  const EdgeId* end = edge_ids_ + num_edges_;
  const EdgeId* it = std::lower_bound(edge_ids_, end, id);
  if (it == end || !(*it == id)) return kNoEdge;
  return static_cast<DenseEdgeIndex>(it - edge_ids_);
}

bool GraphSnapshot::NodeHasLabel(DenseNodeIndex n, uint32_t label) const {
  const auto span = NodeLabelIds(n);
  return std::binary_search(span.begin(), span.end(), label);
}

bool GraphSnapshot::EdgeHasLabel(DenseEdgeIndex e, uint32_t label) const {
  const auto span = EdgeLabelIds(e);
  return std::binary_search(span.begin(), span.end(), label);
}

const GraphSnapshot::PropertyColumn* GraphSnapshot::NodeColumn(
    const std::string& key) const {
  const auto it = std::lower_bound(
      node_columns_.begin(), node_columns_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == node_columns_.end() || it->first != key) return nullptr;
  return &it->second;
}

const GraphSnapshot::PropertyColumn* GraphSnapshot::EdgeColumn(
    const std::string& key) const {
  const auto it = std::lower_bound(
      edge_columns_.begin(), edge_columns_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == edge_columns_.end() || it->first != key) return nullptr;
  return &it->second;
}

uint32_t GraphSnapshot::InternedString(std::string_view s) const {
  // The pool is sorted by content — binary search over the offset table.
  size_t lo = 0, hi = num_strings_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (StringAt(static_cast<uint32_t>(mid)) < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == num_strings_ || StringAt(static_cast<uint32_t>(lo)) != s) {
    return kNoString;
  }
  return static_cast<uint32_t>(lo);
}

// --- cell semantics -----------------------------------------------------------

int GraphSnapshot::CompareCellSingleton(const PropertyColumn& col, size_t i,
                                        const Value& v, bool* ok) const {
  const PropKind kind = col.KindAt(i);
  switch (kind) {
    case PropKind::kAbsent:
      *ok = false;
      return 0;
    case PropKind::kOverflow: {
      const ValueSet& s = col.OverflowAt(i);
      if (!s.is_singleton()) {
        *ok = false;
        return 0;
      }
      *ok = true;
      return s.single().Compare(v);
    }
    default:
      break;
  }
  *ok = true;
  const int rl = RankOfKind(kind);
  const int rr = RankOfType(v.type());
  if (rl != rr) return rl < rr ? -1 : 1;
  switch (kind) {
    case PropKind::kNull:
      return 0;
    case PropKind::kBool:
      return Cmp(col.BoolAt(i), v.AsBool());
    case PropKind::kInt:
      // Int-int compares exactly; mixed numerics through double, as
      // Value::Compare does.
      if (v.is_int()) return Cmp(col.IntAt(i), v.AsInt());
      return Cmp(static_cast<double>(col.IntAt(i)), v.NumericAsDouble());
    case PropKind::kDouble:
      return Cmp(col.DoubleAt(i), v.NumericAsDouble());
    case PropKind::kString: {
      const int c = StringAt(col.StringIdAt(i)).compare(v.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case PropKind::kDate: {
      // Epoch days order dates chronologically but are not injective over
      // non-calendar literals (2020-01-40 aliases 2020-02-09), so a tied
      // day count falls back to the field-wise tie-break — exactly what
      // Value::Compare does, keeping this differential with the
      // materialized path. Inline cells hold valid dates (EncodeCell
      // routes the rest out of line), so the cell's canonical fields come
      // from FromEpochDays.
      const int c = Cmp(col.DateDaysAt(i), v.AsDate().ToEpochDays());
      if (c != 0) return c;
      const Date cell = Date::FromEpochDays(col.DateDaysAt(i));
      const Date& lit = v.AsDate();
      if (!(cell == lit)) return cell < lit ? -1 : 1;
      return 0;
    }
    default:
      return 0;  // unreachable
  }
}

bool GraphSnapshot::CellEqualsSingleton(const PropertyColumn& col, size_t i,
                                        const Value& v) const {
  // String equality short-circuits on pool ids (the common pushed-filter
  // case): equal strings share one id by construction.
  if (col.KindAt(i) == PropKind::kString && v.is_string()) {
    return StringAt(col.StringIdAt(i)) == v.AsString();
  }
  bool ok = false;
  const int cmp = CompareCellSingleton(col, i, v, &ok);
  return ok && cmp == 0;
}

bool GraphSnapshot::CellContains(const PropertyColumn& col, size_t i,
                                 const Value& v) const {
  if (col.KindAt(i) == PropKind::kOverflow) {
    return col.OverflowAt(i).Contains(v);
  }
  return CellEqualsSingleton(col, i, v);
}

ValueSet GraphSnapshot::CellValues(const PropertyColumn& col,
                                   size_t i) const {
  switch (col.KindAt(i)) {
    case PropKind::kAbsent:
      return ValueSet();
    case PropKind::kNull:
      return ValueSet(Value::Null());
    case PropKind::kBool:
      return ValueSet(Value::Bool(col.BoolAt(i)));
    case PropKind::kInt:
      return ValueSet(Value::Int(col.IntAt(i)));
    case PropKind::kDouble:
      return ValueSet(Value::Double(col.DoubleAt(i)));
    case PropKind::kString:
      return ValueSet(
          Value::String(std::string(StringAt(col.StringIdAt(i)))));
    case PropKind::kDate:
      return ValueSet(Value::OfDate(Date::FromEpochDays(col.DateDaysAt(i))));
    case PropKind::kOverflow:
      return col.OverflowAt(i);
  }
  return ValueSet();
}

}  // namespace gcore
