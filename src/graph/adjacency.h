// CSR adjacency topology of a PPG, used by the matcher and path finders.
// GraphSnapshot (snapshot.h) embeds one and layers label spans and typed
// property columns over its dense numbering; the read path reaches it
// through the snapshot.
//
// Path evaluation (Appendix A.1) is defined over graph traversal in both
// edge directions (an edge e with ρ(e) = (a, b) may be crossed a→b as ℓ or
// b→a as ℓ⁻), so the index stores forward and backward lists. The index
// also fixes the dense node numbering that realizes the paper's "fixed
// lexicographical order on nodes" used to pick deterministic shortest
// paths.
#ifndef GCORE_GRAPH_ADJACENCY_H_
#define GCORE_GRAPH_ADJACENCY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/ppg.h"

namespace gcore {

/// Dense index of a node inside an AdjacencyIndex.
using DenseNodeIndex = uint32_t;

/// Dense index of an edge (ascending edge-id order). The numbering is
/// shared with GraphSnapshot — both number edges by ascending id — so an
/// entry's `edge_dense` indexes directly into the snapshot's label spans
/// and typed property columns.
using DenseEdgeIndex = uint32_t;

/// One traversable half-edge.
struct AdjacencyEntry {
  DenseNodeIndex neighbor;
  /// Dense index of `edge` (fills the alignment hole before `edge`, so
  /// carrying it is free). Path kernels and the multiway join use it for
  /// snapshot label/column admission without a per-edge binary search.
  DenseEdgeIndex edge_dense;
  EdgeId edge;
  /// True when the traversal follows ρ(e) = (here, neighbor); false when it
  /// crosses the edge against its direction (matches ℓ⁻ in path regexes).
  bool forward;
};

/// Immutable CSR over one PPG. Invalidated by any mutation of the graph.
class AdjacencyIndex {
 public:
  explicit AdjacencyIndex(const PathPropertyGraph& graph);

  size_t num_nodes() const { return node_ids_.size(); }
  size_t num_edges() const { return graph_->NumEdges(); }
  const PathPropertyGraph& graph() const { return *graph_; }

  /// Dense index of `id`; nodes are numbered in increasing id order.
  DenseNodeIndex IndexOf(NodeId id) const { return index_of_.at(id); }
  bool Contains(NodeId id) const { return index_of_.count(id) > 0; }
  NodeId IdOf(DenseNodeIndex idx) const { return node_ids_[idx]; }

  /// Outgoing half-edges of `n` in forward direction.
  std::pair<const AdjacencyEntry*, const AdjacencyEntry*> Out(
      DenseNodeIndex n) const {
    return {out_entries_.data() + out_offsets_[n],
            out_entries_.data() + out_offsets_[n + 1]};
  }
  /// Incoming half-edges of `n` (traversals against edge direction).
  std::pair<const AdjacencyEntry*, const AdjacencyEntry*> In(
      DenseNodeIndex n) const {
    return {in_entries_.data() + in_offsets_[n],
            in_entries_.data() + in_offsets_[n + 1]};
  }

  // --- sorted-neighbor view -------------------------------------------------
  // The CSR entries of each node are ordered by (neighbor, edge), and the
  // dense numbering is ascending in node id, so every Out/In span doubles
  // as a sorted adjacency list keyed by neighbor. The worst-case-optimal
  // multiway join (plan/wcoj.h) intersects these spans directly.

  /// Half-open, (neighbor, edge)-sorted span of half-edges.
  struct EntrySpan {
    const AdjacencyEntry* begin = nullptr;
    const AdjacencyEntry* end = nullptr;
    size_t size() const { return static_cast<size_t>(end - begin); }
    bool empty() const { return begin == end; }
  };

  /// Sorted out-/in-neighbor list of `n` (same storage as Out/In).
  EntrySpan OutSorted(DenseNodeIndex n) const {
    return {out_entries_.data() + out_offsets_[n],
            out_entries_.data() + out_offsets_[n + 1]};
  }
  EntrySpan InSorted(DenseNodeIndex n) const {
    return {in_entries_.data() + in_offsets_[n],
            in_entries_.data() + in_offsets_[n + 1]};
  }

  /// Entries of `span` connecting to `neighbor` (binary search — the
  /// parallel-edge enumeration step of the multiway intersection).
  static EntrySpan EdgesTo(EntrySpan span, DenseNodeIndex neighbor);

  /// Both traversable half-edge spans of one node, Out before In — the
  /// unconstrained-direction view. Borrowed from the CSR arrays; nothing
  /// is copied or allocated.
  struct NeighborSpans {
    EntrySpan out;
    EntrySpan in;
    size_t size() const { return out.size() + in.size(); }
    bool empty() const { return out.empty() && in.empty(); }
  };

  /// All traversable half-edges of `n` — use when direction is
  /// unconstrained.
  NeighborSpans AllNeighbors(DenseNodeIndex n) const {
    return {OutSorted(n), InSorted(n)};
  }

 private:
  const PathPropertyGraph* graph_;
  std::vector<NodeId> node_ids_;  // dense -> id, sorted ascending
  std::unordered_map<NodeId, DenseNodeIndex> index_of_;
  std::vector<uint32_t> out_offsets_;
  std::vector<AdjacencyEntry> out_entries_;
  std::vector<uint32_t> in_offsets_;
  std::vector<AdjacencyEntry> in_entries_;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_ADJACENCY_H_
