// CSR adjacency topology of a PPG, used by the matcher and path finders.
// GraphSnapshot (snapshot.h) embeds one and layers label spans and typed
// property columns over its dense numbering; the read path reaches it
// through the snapshot.
//
// Path evaluation (Appendix A.1) is defined over graph traversal in both
// edge directions (an edge e with ρ(e) = (a, b) may be crossed a→b as ℓ or
// b→a as ℓ⁻), so the index stores forward and backward lists. The index
// also fixes the dense node numbering that realizes the paper's "fixed
// lexicographical order on nodes" used to pick deterministic shortest
// paths.
//
// Storage comes in two modes behind one accessor surface:
//   * owned  — built from a PPG; the CSR arrays live in this object's
//     vectors (the standalone construction path finders use directly);
//   * borrowed — a View over arrays that live elsewhere, in practice the
//     flat arena of a GraphSnapshot (freshly frozen or loaded from disk).
// Either way the accessors read raw pointer + count members, so the read
// path is identical; node lookup is a binary search over the ascending
// node-id array (no per-node hash map to serialize).
#ifndef GCORE_GRAPH_ADJACENCY_H_
#define GCORE_GRAPH_ADJACENCY_H_

#include <cstdint>
#include <vector>

#include "graph/ppg.h"

namespace gcore {

/// Dense index of a node inside an AdjacencyIndex.
using DenseNodeIndex = uint32_t;

/// Dense index of an edge (ascending edge-id order). The numbering is
/// shared with GraphSnapshot — both number edges by ascending id — so an
/// entry's `edge_dense` indexes directly into the snapshot's label spans
/// and typed property columns.
using DenseEdgeIndex = uint32_t;

/// One traversable half-edge.
struct AdjacencyEntry {
  DenseNodeIndex neighbor;
  /// Dense index of `edge` (fills the alignment hole before `edge`, so
  /// carrying it is free). Path kernels and the multiway join use it for
  /// snapshot label/column admission without a per-edge binary search.
  DenseEdgeIndex edge_dense;
  EdgeId edge;
  /// True when the traversal follows ρ(e) = (here, neighbor); false when it
  /// crosses the edge against its direction (matches ℓ⁻ in path regexes).
  bool forward;
};

/// Immutable CSR over one PPG. Invalidated by any mutation of the graph.
class AdjacencyIndex {
 public:
  /// The raw CSR storage: pointers + counts, either into this index's own
  /// vectors (owned mode) or into a GraphSnapshot arena (borrowed mode).
  /// GraphSnapshot packs an owned index into its arena through this view
  /// and re-attaches one over the arena on load. `graph` may be null for
  /// an image loaded from disk until a reconstructed PPG is bound.
  struct View {
    const PathPropertyGraph* graph = nullptr;
    const NodeId* node_ids = nullptr;  // dense -> id, sorted ascending
    size_t num_nodes = 0;
    size_t num_edges = 0;
    const uint32_t* out_offsets = nullptr;  // num_nodes + 1 entries
    const AdjacencyEntry* out_entries = nullptr;
    const uint32_t* in_offsets = nullptr;  // num_nodes + 1 entries
    const AdjacencyEntry* in_entries = nullptr;
  };

  /// Empty index (no nodes); assign a real one before use.
  AdjacencyIndex() = default;
  /// Builds and owns the CSR arrays for the current state of `graph`.
  explicit AdjacencyIndex(const PathPropertyGraph& graph);
  /// Borrows CSR arrays owned elsewhere; `view`'s pointers must outlive
  /// this index (GraphSnapshot guarantees that via its arena buffer).
  explicit AdjacencyIndex(const View& view) : view_(view) {}

  // Moving transfers the owned vectors; the view pointers keep aiming at
  // the vectors' (stable) heap buffers, so defaults are correct. Copying
  // would alias owned storage and is disallowed.
  AdjacencyIndex(AdjacencyIndex&&) = default;
  AdjacencyIndex& operator=(AdjacencyIndex&&) = default;
  AdjacencyIndex(const AdjacencyIndex&) = delete;
  AdjacencyIndex& operator=(const AdjacencyIndex&) = delete;

  /// The raw storage (GraphSnapshot serializes through this).
  const View& view() const { return view_; }
  /// (Re)binds the source graph — snapshot loaders attach the CSR first
  /// and bind the reconstructed PPG afterwards.
  void set_graph(const PathPropertyGraph* graph) { view_.graph = graph; }
  bool has_graph() const { return view_.graph != nullptr; }

  size_t num_nodes() const { return view_.num_nodes; }
  size_t num_edges() const { return view_.num_edges; }
  /// The source PPG; requires has_graph() (true for every index built from
  /// a PPG, and for loaded snapshots once the catalog binds the
  /// reconstruction).
  const PathPropertyGraph& graph() const { return *view_.graph; }

  /// Dense index of `id`; nodes are numbered in increasing id order.
  /// Binary search over the ascending id array; requires membership.
  DenseNodeIndex IndexOf(NodeId id) const;
  bool Contains(NodeId id) const;
  NodeId IdOf(DenseNodeIndex idx) const { return view_.node_ids[idx]; }

  /// Outgoing half-edges of `n` in forward direction.
  std::pair<const AdjacencyEntry*, const AdjacencyEntry*> Out(
      DenseNodeIndex n) const {
    return {view_.out_entries + view_.out_offsets[n],
            view_.out_entries + view_.out_offsets[n + 1]};
  }
  /// Incoming half-edges of `n` (traversals against edge direction).
  std::pair<const AdjacencyEntry*, const AdjacencyEntry*> In(
      DenseNodeIndex n) const {
    return {view_.in_entries + view_.in_offsets[n],
            view_.in_entries + view_.in_offsets[n + 1]};
  }

  // --- sorted-neighbor view -------------------------------------------------
  // The CSR entries of each node are ordered by (neighbor, edge), and the
  // dense numbering is ascending in node id, so every Out/In span doubles
  // as a sorted adjacency list keyed by neighbor. The worst-case-optimal
  // multiway join (plan/wcoj.h) intersects these spans directly.

  /// Half-open, (neighbor, edge)-sorted span of half-edges.
  struct EntrySpan {
    const AdjacencyEntry* begin = nullptr;
    const AdjacencyEntry* end = nullptr;
    size_t size() const { return static_cast<size_t>(end - begin); }
    bool empty() const { return begin == end; }
  };

  /// Sorted out-/in-neighbor list of `n` (same storage as Out/In).
  EntrySpan OutSorted(DenseNodeIndex n) const {
    return {view_.out_entries + view_.out_offsets[n],
            view_.out_entries + view_.out_offsets[n + 1]};
  }
  EntrySpan InSorted(DenseNodeIndex n) const {
    return {view_.in_entries + view_.in_offsets[n],
            view_.in_entries + view_.in_offsets[n + 1]};
  }

  /// Entries of `span` connecting to `neighbor` (binary search — the
  /// parallel-edge enumeration step of the multiway intersection).
  static EntrySpan EdgesTo(EntrySpan span, DenseNodeIndex neighbor);

  /// Both traversable half-edge spans of one node, Out before In — the
  /// unconstrained-direction view. Borrowed from the CSR arrays; nothing
  /// is copied or allocated.
  struct NeighborSpans {
    EntrySpan out;
    EntrySpan in;
    size_t size() const { return out.size() + in.size(); }
    bool empty() const { return out.empty() && in.empty(); }
  };

  /// All traversable half-edges of `n` — use when direction is
  /// unconstrained.
  NeighborSpans AllNeighbors(DenseNodeIndex n) const {
    return {OutSorted(n), InSorted(n)};
  }

 private:
  View view_;
  // Owned storage of the PPG-built mode; empty in borrowed mode. view_
  // points into these when non-empty.
  std::vector<NodeId> node_ids_;
  std::vector<uint32_t> out_offsets_;
  std::vector<AdjacencyEntry> out_entries_;
  std::vector<uint32_t> in_offsets_;
  std::vector<AdjacencyEntry> in_entries_;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_ADJACENCY_H_
