// Per-graph summary statistics for the query planner's cardinality
// estimator (plan/cost.h).
//
// Beyond the object/label counts of the original seed, a GraphStats
// carries per-property-key distributions (how many objects hold the key,
// how many distinct values it takes, the numeric min/max) and measured
// edge-degree histograms keyed by (endpoint label, edge label) — the
// ingredients for the estimator's 1/distinct equality rule, min/max range
// interpolation and degree-based expansion fanout. The columnar layout of
// the Ω layer makes all of these one linear scan to collect.
//
// Two refinements feed the join subsystem (plan/cost.h):
//   * per-bucket *maximum* degree next to every (endpoint label, edge
//     label) average — the ingredient of the degree-aware AGM/FD upper
//     bound that prices MultiwayExpand against binary join trees
//     (Abo Khamis, Ngo & Suciu);
//   * per-(label, key) property distributions, so a label-restricted
//     scan with a property filter stops paying the carrying-fraction ×
//     label-fraction independence double-charge (the global per-key
//     distribution remains the fallback when a bucket is missing).
//
// Three collection paths produce identical statistics:
//   * GraphStats::CollectFromSnapshot(snapshot) — a column sweep over the
//     frozen GraphSnapshot; what GraphCatalog::Stats runs lazily (and
//     caches) on first use, sharing the snapshot it caches anyway.
//   * GraphStats::Collect(graph) — one full scan of the mutable PPG; the
//     reference implementation the other two are pinned against.
//   * StatsCollector — incremental accumulation as objects are added;
//     GraphBuilder maintains one so builder-constructed graphs can be
//     registered with their statistics precomputed
//     (GraphCatalog::RegisterGraph(name, graph, stats)), skipping the scan.
#ifndef GCORE_GRAPH_STATS_H_
#define GCORE_GRAPH_STATS_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "graph/ppg.h"

namespace gcore {

class GraphSnapshot;

/// Distribution summary of one property key over one object class
/// (nodes or edges) of a graph.
struct PropertyStats {
  /// Objects carrying the key (σ(x, k) non-empty).
  size_t count = 0;
  /// Distinct values observed across all carrying objects.
  size_t distinct = 0;
  /// True when at least one numeric value was seen; min/max below are
  /// then the numeric range (non-numeric values do not contribute).
  bool has_range = false;
  double min = 0.0;
  double max = 0.0;

  friend bool operator==(const PropertyStats& a, const PropertyStats& b) {
    return a.count == b.count && a.distinct == b.distinct &&
           a.has_range == b.has_range && a.min == b.min && a.max == b.max;
  }
};

/// Summary statistics of one catalog graph. Computed lazily per graph by
/// GraphCatalog::Stats (cached until the graph is re-registered or
/// dropped), or handed in precomputed by a StatsCollector.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_paths = 0;
  /// Number of nodes/edges carrying each label.
  std::map<std::string, size_t> node_label_counts;
  std::map<std::string, size_t> edge_label_counts;
  /// Per-property-key distributions of node / edge properties.
  std::map<std::string, PropertyStats> node_props;
  std::map<std::string, PropertyStats> edge_props;
  /// Label-restricted distributions keyed [object label][property key]:
  /// the same PropertyStats, but counted over the objects carrying the
  /// label (count relative to the label's object count, distinct/range
  /// over the label's carriers). Buckets exist only for labels whose
  /// objects carry properties; the global maps above are the fallback.
  std::map<std::string, std::map<std::string, PropertyStats>>
      node_props_by_label;
  std::map<std::string, std::map<std::string, PropertyStats>>
      edge_props_by_label;
  /// Edge counts keyed by [endpoint label][edge label]: out_edge_counts
  /// buckets every edge under each label of its *source* node,
  /// in_edge_counts under each label of its *target*. The empty string is
  /// the "any" bucket on either key, so out_edge_counts[""][""] is
  /// num_edges.
  std::map<std::string, std::map<std::string, size_t>> out_edge_counts;
  std::map<std::string, std::map<std::string, size_t>> in_edge_counts;
  /// Maximum per-node degree of each bucket above: out_degree_max[ℓ][e]
  /// is the largest number of e-labeled edges leaving any single ℓ-labeled
  /// node (the worst-case fanout the AGM/FD join bound multiplies by).
  /// A bucket missing from the map means no such edge was measured.
  std::map<std::string, std::map<std::string, size_t>> out_degree_max;
  std::map<std::string, std::map<std::string, size_t>> in_degree_max;

  /// Nodes carrying `label`; 0 when the label never occurs.
  size_t NodesWithLabel(const std::string& label) const;
  size_t EdgesWithLabel(const std::string& label) const;

  /// Measured average out-degree: edges labeled `edge_label` leaving
  /// nodes labeled `src_label`, divided by the count of such nodes.
  /// Empty src_label averages over all nodes; empty edge_label counts
  /// edges of any label. 0 when the label combination never occurs.
  double AvgOutDegree(const std::string& src_label,
                      const std::string& edge_label) const;
  /// Average in-degree, keyed by the *target* node's label.
  double AvgInDegree(const std::string& dst_label,
                     const std::string& edge_label) const;

  /// Maximum out-degree of the (src_label, edge_label) bucket; 0 when the
  /// combination was never measured (callers fall back to the average).
  size_t MaxOutDegree(const std::string& src_label,
                      const std::string& edge_label) const;
  size_t MaxInDegree(const std::string& dst_label,
                     const std::string& edge_label) const;

  /// Distribution of `key` over nodes carrying `label`; null when the
  /// bucket is missing (the caller falls back to node_props). An empty
  /// label returns the global distribution.
  const PropertyStats* NodePropStatsFor(const std::string& label,
                                        const std::string& key) const;
  const PropertyStats* EdgePropStatsFor(const std::string& label,
                                        const std::string& key) const;

  /// Full-scan collection over the mutable PPG (kept as the reference
  /// path; tests pin CollectFromSnapshot against it).
  static GraphStats Collect(const PathPropertyGraph& graph);
  /// Column sweep over a frozen snapshot: label counts read off the
  /// per-label index spans, property distributions off the typed columns.
  /// Produces statistics identical to Collect on the snapshotted graph —
  /// this is what GraphCatalog::Stats runs, since the catalog builds the
  /// snapshot anyway.
  static GraphStats CollectFromSnapshot(const GraphSnapshot& snapshot);

  friend bool operator==(const GraphStats& a, const GraphStats& b) {
    return a.num_nodes == b.num_nodes && a.num_edges == b.num_edges &&
           a.num_paths == b.num_paths &&
           a.node_label_counts == b.node_label_counts &&
           a.edge_label_counts == b.edge_label_counts &&
           a.node_props == b.node_props && a.edge_props == b.edge_props &&
           a.node_props_by_label == b.node_props_by_label &&
           a.edge_props_by_label == b.edge_props_by_label &&
           a.out_edge_counts == b.out_edge_counts &&
           a.in_edge_counts == b.in_edge_counts &&
           a.out_degree_max == b.out_degree_max &&
           a.in_degree_max == b.in_degree_max;
  }
};

/// Incremental statistics accumulator: feed it every object as it is
/// added (GraphBuilder does this for its construction API) and Finish()
/// yields the same GraphStats a full Collect() scan would produce.
/// Distinct-value tracking keeps one value set per property key until
/// Finish, so the collector costs what the graph's property data costs.
class StatsCollector {
 public:
  void AddNode(const LabelSet& labels, const PropertyMap& props);
  /// `src_labels`/`dst_labels` are the endpoint labels at insertion time;
  /// GraphBuilder adds edges after their endpoints are fully labeled.
  /// `src`/`dst` identify the endpoints so per-node degree counters (the
  /// max-degree histograms) can accumulate.
  void AddEdge(const LabelSet& edge_labels, const PropertyMap& props,
               const LabelSet& src_labels, const LabelSet& dst_labels,
               NodeId src, NodeId dst);
  void AddPath();
  /// One value appended to a node/edge property; `is_new_key` is true
  /// when the object held no value for `key` before. `labels` are the
  /// object's labels at that moment (per-label distribution buckets).
  void AddNodePropertyValue(const LabelSet& labels, const std::string& key,
                            const Value& value, bool is_new_key);
  void AddEdgePropertyValue(const LabelSet& labels, const std::string& key,
                            const Value& value, bool is_new_key);

  /// Snapshot of the accumulated statistics (distinct counts and degree
  /// maxima resolved).
  GraphStats Finish() const;

 private:
  /// Distinct-value tracking sets of one object class: global per key,
  /// and per (label, key) for the label-restricted buckets.
  struct ValueSets {
    std::map<std::string, std::set<Value>> global;
    std::map<std::string, std::map<std::string, std::set<Value>>> by_label;
  };
  /// Per-node edge counters of one direction, keyed
  /// [node][endpoint label][edge label]; Finish() folds them into maxima
  /// (order-independent, so the node key hashes — this sits on the
  /// stats-enabled edge-ingest hot path).
  using DegreeCounts = std::unordered_map<
      uint64_t, std::map<std::string, std::map<std::string, size_t>>>;

  GraphStats stats_;
  ValueSets node_values_;
  ValueSets edge_values_;
  DegreeCounts out_degrees_;
  DegreeCounts in_degrees_;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_STATS_H_
