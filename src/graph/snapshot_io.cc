#include "graph/snapshot_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

namespace gcore {

namespace {

constexpr uint64_t kFileMagic = 0x50414E5345524347ULL;  // "GCRESNAP"
constexpr uint32_t kFileVersion = 1;

/// 32 bytes, so the payload that follows stays 8-aligned both in a heap
/// buffer (read whole-file) and in an mmap'ed view (page-aligned base).
struct FileHeader {
  uint64_t magic = kFileMagic;
  uint32_t version = kFileVersion;
  uint32_t flags = 0;  // reserved
  uint64_t payload_size = 0;
  uint64_t checksum = 0;  // word-wise FNV-1a 64 over the payload
};
static_assert(sizeof(FileHeader) == 32, "header must keep payload 8-aligned");

/// FNV-1a folding 8 little-endian bytes per step instead of 1 — the
/// arena is tens of MB and the byte-wise chain of dependent multiplies
/// dominated LoadSnapshotFile. Any flipped bit still flips the word it
/// lands in, so corruption detection is unchanged; the value simply
/// *is* the format's checksum (the arena's 8-aligned tail pads with
/// zeros, and version 1 has no byte-wise files to stay compatible with).
uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ULL;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    h ^= word;
    h *= 0x100000001b3ULL;
  }
  if (i < size) {
    uint64_t word = 0;
    std::memcpy(&word, data + i, size - i);
    h ^= word;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::InvalidArgument("snapshot file " + path + ": " + what +
                                 (errno != 0 ? std::string(": ") +
                                                   std::strerror(errno)
                                             : std::string()));
}

/// Reads and sanity-checks the header; on success `*header` is filled and
/// the stream is positioned at the payload.
Status ReadHeader(std::FILE* f, const std::string& path, size_t file_size,
                  FileHeader* header) {
  if (file_size < sizeof(FileHeader)) {
    return Status::InvalidArgument("snapshot file " + path +
                                   ": smaller than the header");
  }
  if (std::fread(header, sizeof(*header), 1, f) != 1) {
    return IoError("short header read", path);
  }
  if (header->magic != kFileMagic) {
    return Status::InvalidArgument("snapshot file " + path + ": bad magic");
  }
  if (header->version != kFileVersion) {
    return Status::InvalidArgument(
        "snapshot file " + path + ": format version " +
        std::to_string(header->version) + " (expected " +
        std::to_string(kFileVersion) + "); re-freeze from the source graph");
  }
  if (header->payload_size != file_size - sizeof(FileHeader)) {
    return Status::InvalidArgument("snapshot file " + path +
                                   ": truncated payload");
  }
  return Status::OK();
}

Result<size_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return IoError("stat failed", path);
  }
  return static_cast<size_t>(st.st_size);
}

}  // namespace

Status SaveSnapshot(const GraphSnapshot& snap, const std::string& path) {
  const ArenaBuffer& arena = snap.arena();
  FileHeader header;
  header.payload_size = arena.size();
  header.checksum = Fnv1a(arena.data(), arena.size());

  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("open for write failed", path);
  const bool ok =
      std::fwrite(&header, sizeof(header), 1, f) == 1 &&
      (arena.size() == 0 ||
       std::fwrite(arena.data(), arena.size(), 1, f) == 1);
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::remove(path.c_str());  // no partial files
    return IoError("write failed", path);
  }
  return Status::OK();
}

Result<std::shared_ptr<GraphSnapshot>> LoadSnapshotFile(
    const std::string& path) {
  GCORE_ASSIGN_OR_RETURN(const size_t file_size, FileSize(path));
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoError("open failed", path);
  FileHeader header;
  Status st = ReadHeader(f, path, file_size, &header);
  if (!st.ok()) {
    std::fclose(f);
    return st;
  }
  std::vector<uint8_t> payload(header.payload_size);
  if (header.payload_size > 0 &&
      std::fread(payload.data(), payload.size(), 1, f) != 1) {
    std::fclose(f);
    return IoError("short payload read", path);
  }
  std::fclose(f);
  if (Fnv1a(payload.data(), payload.size()) != header.checksum) {
    return Status::InvalidArgument("snapshot file " + path +
                                   ": checksum mismatch");
  }
  return GraphSnapshot::FromArena(ArenaBuffer::Own(std::move(payload)));
}

Result<std::shared_ptr<GraphSnapshot>> MmapSnapshotFile(
    const std::string& path, bool verify_checksum) {
  GCORE_ASSIGN_OR_RETURN(const size_t file_size, FileSize(path));
  errno = 0;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open failed", path);
  std::FILE* f = ::fdopen(::dup(fd), "rb");
  FileHeader header;
  Status st = f == nullptr ? IoError("fdopen failed", path)
                           : ReadHeader(f, path, file_size, &header);
  if (f != nullptr) std::fclose(f);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }

  void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base == MAP_FAILED) return IoError("mmap failed", path);

  // The deleter unmaps when the last ArenaBuffer copy (hence the last
  // snapshot sharing the mapping) goes away.
  std::shared_ptr<const void> owner(
      base, [file_size](void* p) { ::munmap(p, file_size); });
  const uint8_t* payload =
      static_cast<const uint8_t*>(base) + sizeof(FileHeader);
  if (verify_checksum &&
      Fnv1a(payload, header.payload_size) != header.checksum) {
    return Status::InvalidArgument("snapshot file " + path +
                                   ": checksum mismatch");
  }
  return GraphSnapshot::FromArena(
      ArenaBuffer(std::move(owner), payload, header.payload_size));
}

}  // namespace gcore
