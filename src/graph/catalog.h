// The graph catalog: the `gr` function of Appendix A (graph identifiers →
// graphs), plus tables for the Section 5 extensions and the session-wide
// id allocator.
//
// GRAPH VIEW creates a persistent catalog entry; GRAPH ... AS creates a
// query-local one (the engine scopes those by snapshotting/restoring).
// Both are materialized at registration time, which matches the paper's
// presentation (Figure 5 shows the views as concrete graphs).
#ifndef GCORE_GRAPH_CATALOG_H_
#define GCORE_GRAPH_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/ppg.h"
#include "snb/table.h"

namespace gcore {

/// Summary statistics of one catalog graph, used by the query planner's
/// cardinality estimator (plan/cost.h). Computed lazily per graph and
/// cached until the graph is re-registered or dropped.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_paths = 0;
  /// Number of nodes/edges carrying each label.
  std::map<std::string, size_t> node_label_counts;
  std::map<std::string, size_t> edge_label_counts;

  /// Nodes carrying `label`; 0 when the label never occurs.
  size_t NodesWithLabel(const std::string& label) const;
  size_t EdgesWithLabel(const std::string& label) const;
};

class GraphCatalog {
 public:
  GraphCatalog() : ids_(std::make_shared<IdAllocator>()) {}

  /// Registers (or replaces) a named graph.
  void RegisterGraph(const std::string& name, PathPropertyGraph graph);

  /// gr(gid). NotFound when unregistered.
  Result<const PathPropertyGraph*> Lookup(const std::string& name) const;
  bool HasGraph(const std::string& name) const;
  void DropGraph(const std::string& name);
  std::vector<std::string> GraphNames() const;

  /// Default graph used when MATCH has no ON clause (Section 3: "Systems
  /// may omit ON if there is a default graph").
  void SetDefaultGraph(const std::string& name) { default_graph_ = name; }
  const std::string& default_graph() const { return default_graph_; }

  /// Tabular inputs for the Section 5 extensions (FROM <table>,
  /// MATCH (o) ON <table>).
  void RegisterTable(const std::string& name, Table table);
  Result<const Table*> LookupTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// Statistics of a registered graph, computed on first use and cached.
  /// NotFound when the graph is unregistered.
  Result<const GraphStats*> Stats(const std::string& name);

  /// Session-wide identifier allocator shared by all graphs.
  IdAllocator* ids() { return ids_.get(); }
  std::shared_ptr<IdAllocator> ids_ptr() { return ids_; }

 private:
  std::shared_ptr<IdAllocator> ids_;
  std::map<std::string, PathPropertyGraph> graphs_;
  std::map<std::string, Table> tables_;
  std::map<std::string, GraphStats> stats_cache_;
  std::string default_graph_;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_CATALOG_H_
