// The graph catalog: the `gr` function of Appendix A (graph identifiers →
// graphs), plus tables for the Section 5 extensions and the session-wide
// id allocator.
//
// GRAPH VIEW creates a persistent catalog entry; GRAPH ... AS creates a
// query-local one (the engine scopes those by snapshotting/restoring).
// Both are materialized at registration time, which matches the paper's
// presentation (Figure 5 shows the views as concrete graphs).
//
// Per registered graph the catalog lazily builds and caches the two
// read-path derivatives — GraphStats (stats.h) and the frozen columnar
// GraphSnapshot (snapshot.h) — and drops both when the name is
// re-registered, so they can never go stale against the graph they
// describe. Registration has a third entry point beside RegisterGraph
// and RegisterGraphFromTable: RegisterSnapshotFile attaches a snapshot
// image saved by graph/snapshot_io.h (read-back or zero-copy mmap),
// reconstructs its PPG and pre-seeds the snapshot cache, so a cold start
// skips the O(|V|+|E|+|σ|) freeze entirely.
//
// Concurrency model (the serving layer): every public member serializes
// on one mutex held only across the lookup/registration itself, so N
// sessions may call in concurrently. Each registered graph carries a
// monotonically increasing *version*, bumped on re-registration and
// drop — the plan cache keys on it, and tests can pin that an in-flight
// reader stayed on the version it started with. Graphs, stats, snapshots
// and tables are handed out through shared_ptr images; replacing an
// entry retires the old image into an epoch list that is reclaimed only
// when no reader is active (ReaderGuard), so raw pointers held by an
// in-flight query stay valid until that query finishes, while new
// sessions immediately see the new version.
#ifndef GCORE_GRAPH_CATALOG_H_
#define GCORE_GRAPH_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/ppg.h"
#include "graph/stats.h"
#include "snb/table.h"

namespace gcore {

class GraphSnapshot;

class GraphCatalog {
 public:
  GraphCatalog() : ids_(std::make_shared<IdAllocator>()) {}

  /// Registers (or replaces) a named graph. Replacement bumps the name's
  /// version; the old graph/stats/snapshot images are epoch-retired (kept
  /// alive until no reader is active).
  void RegisterGraph(const std::string& name, PathPropertyGraph graph);
  /// Registers a graph together with precomputed statistics (e.g. a
  /// GraphBuilder's incrementally collected GraphBuilder::Stats()),
  /// seeding the cache Stats() reads so no collection scan runs later.
  void RegisterGraph(const std::string& name, PathPropertyGraph graph,
                     GraphStats stats);
  /// Registers a graph synthesized from the same-name table (the
  /// Section 5 "ON <table>" node graph, built by Matcher::ResolveGraph).
  /// The entry is marked so a later RegisterTable of that name drops it —
  /// the synthesis describes one table image and must not outlive it.
  void RegisterGraphFromTable(const std::string& name,
                              PathPropertyGraph graph);

  /// Registers a graph from a snapshot image saved by SaveSnapshot
  /// (graph/snapshot_io.h): loads the arena (zero-copy mmap when
  /// `use_mmap`), reconstructs the PPG it describes, reserves its ids in
  /// the session allocator, and installs both with the usual
  /// version/epoch bump and retirement of any replaced entry. The entry's
  /// snapshot cache is pre-seeded with the loaded image, so the read path
  /// skips the freeze a cold RegisterGraph would pay. InvalidArgument on
  /// a corrupt or version-mismatched file.
  Status RegisterSnapshotFile(const std::string& name, const std::string& path,
                              bool use_mmap = false);

  /// gr(gid). NotFound when unregistered. The pointer stays valid for as
  /// long as the caller's ReaderGuard is open (epoch reclamation), even
  /// across a concurrent re-registration; callers without a guard should
  /// prefer LookupShared.
  Result<const PathPropertyGraph*> Lookup(const std::string& name) const;
  /// Lookup handing out shared ownership: the image survives any later
  /// re-registration for as long as the caller holds the pointer (the
  /// matcher pins every graph it resolves this way, so one query always
  /// finishes on the images it started with).
  Result<std::shared_ptr<const PathPropertyGraph>> LookupShared(
      const std::string& name) const;
  bool HasGraph(const std::string& name) const;
  void DropGraph(const std::string& name);
  std::vector<std::string> GraphNames() const;

  /// Version of a registered graph: monotonically increasing across the
  /// whole catalog, bumped on every (re-)registration. 0 when the name is
  /// unregistered. A plan-cache entry recorded under version v is stale
  /// iff GraphVersion(name) != v.
  uint64_t GraphVersion(const std::string& name) const;

  /// Catalog-wide mutation epoch: bumped by every RegisterGraph /
  /// DropGraph / RegisterTable. An unchanged epoch across a window
  /// proves no registration completed inside it — the engine uses this
  /// to refuse caching a plan whose graph versions were read after a
  /// racing re-registration (the versions would describe a newer catalog
  /// state than the plan was built against).
  uint64_t MutationEpoch() const;

  /// Default graph used when MATCH has no ON clause (Section 3: "Systems
  /// may omit ON if there is a default graph").
  void SetDefaultGraph(const std::string& name);
  std::string default_graph() const;

  /// Tabular inputs for the Section 5 extensions (FROM <table>,
  /// MATCH (o) ON <table>). Re-registration retires the old table image,
  /// drops the graph synthesized from it (RegisterGraphFromTable) and
  /// notifies invalidation listeners, so neither a stale node graph nor
  /// a plan-cache entry keeps serving the old table contents.
  void RegisterTable(const std::string& name, Table table);
  Result<const Table*> LookupTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// Statistics of a registered graph (graph/stats.h), computed on first
  /// use and cached until the graph is re-registered or dropped.
  /// NotFound when the graph is unregistered. Shared ownership: the
  /// returned statistics cannot dangle across a re-registration (they
  /// describe the graph version they were collected from). Collection is
  /// one column sweep over the (equally cached) snapshot, run *outside*
  /// the catalog mutex with a double-checked publish, so a first stats
  /// request on a large graph never blocks concurrent lookups.
  Result<std::shared_ptr<const GraphStats>> Stats(const std::string& name);

  /// Columnar snapshot of a registered graph (graph/snapshot.h), built on
  /// first use and cached until the graph is re-registered or dropped —
  /// the same lifetime as the stats cache, and in fact Stats() derives
  /// uncached statistics from this snapshot with a column sweep, so the
  /// two caches always describe the same graph state. The freeze runs
  /// outside the catalog mutex (double-checked publish; a build racing a
  /// re-registration hands the caller its consistent-but-unpublished
  /// copy). Shared ownership: in-flight queries keep their snapshot
  /// alive across a re-register. NotFound when the graph is
  /// unregistered.
  Result<std::shared_ptr<const GraphSnapshot>> Snapshot(
      const std::string& name);

  /// Invalidation listeners: called (outside the catalog mutex) with the
  /// graph name after every RegisterGraph/DropGraph. The engine hooks its
  /// plan cache here so stale entries disappear eagerly. Remove before
  /// the listening object dies.
  uint64_t AddInvalidationListener(std::function<void(const std::string&)> fn);
  void RemoveInvalidationListener(uint64_t id);

  /// Epoch-based reclamation: a ReaderGuard marks one in-flight reader
  /// (the engine opens one per Execute). While any reader is active,
  /// replaced graph/stats/snapshot/table images are parked on a retired
  /// list instead of destroyed; the last reader to leave drains it. Raw
  /// pointers obtained from the catalog are therefore stable for the
  /// guard's lifetime.
  class ReaderGuard {
   public:
    explicit ReaderGuard(GraphCatalog* catalog) : catalog_(catalog) {
      catalog_->EnterReader();
    }
    ~ReaderGuard() {
      if (catalog_ != nullptr) catalog_->ExitReader();
    }
    ReaderGuard(const ReaderGuard&) = delete;
    ReaderGuard& operator=(const ReaderGuard&) = delete;

   private:
    GraphCatalog* catalog_;
  };

  /// Retired-but-unreclaimed images (testing/introspection).
  size_t RetiredCount() const;

  /// Session-wide identifier allocator shared by all graphs.
  IdAllocator* ids() { return ids_.get(); }
  std::shared_ptr<IdAllocator> ids_ptr() { return ids_; }

 private:
  /// One registered graph with its lazily built read-path derivatives.
  struct Entry {
    std::shared_ptr<const PathPropertyGraph> graph;
    uint64_t version = 0;
    std::shared_ptr<const GraphStats> stats;
    std::shared_ptr<const GraphSnapshot> snapshot;
    /// Synthesized from the same-name table: dropped when that table is
    /// re-registered (RegisterTable), not only on an explicit DropGraph.
    bool from_table = false;
  };

  /// Shared body of the RegisterGraph variants: install the new entry,
  /// bump version + mutation epoch, retire the old images, notify.
  void RegisterGraphImpl(const std::string& name, PathPropertyGraph graph,
                         std::shared_ptr<const GraphStats> stats,
                         bool from_table);

  void EnterReader();
  void ExitReader();
  /// Parks every image of `entry` on the retired list when readers are
  /// active (destroyed immediately otherwise). Caller holds mu_.
  void RetireLocked(Entry entry);
  void NotifyInvalidation(const std::string& name);

  std::shared_ptr<IdAllocator> ids_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> graphs_;
  std::map<std::string, std::shared_ptr<const Table>> tables_;
  uint64_t next_version_ = 1;
  uint64_t mutation_epoch_ = 0;
  std::atomic<int64_t> active_readers_{0};
  /// Type-erased retired images: shared_ptr<void> keeps each payload's
  /// real deleter.
  std::vector<std::shared_ptr<const void>> retired_;
  std::string default_graph_;
  std::map<uint64_t, std::function<void(const std::string&)>> listeners_;
  uint64_t next_listener_ = 1;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_CATALOG_H_
