// The graph catalog: the `gr` function of Appendix A (graph identifiers →
// graphs), plus tables for the Section 5 extensions and the session-wide
// id allocator.
//
// GRAPH VIEW creates a persistent catalog entry; GRAPH ... AS creates a
// query-local one (the engine scopes those by snapshotting/restoring).
// Both are materialized at registration time, which matches the paper's
// presentation (Figure 5 shows the views as concrete graphs).
//
// Per registered graph the catalog lazily builds and caches the two
// read-path derivatives — GraphStats (stats.h) and the frozen columnar
// GraphSnapshot (snapshot.h) — and drops both when the name is
// re-registered, so they can never go stale against the graph they
// describe.
#ifndef GCORE_GRAPH_CATALOG_H_
#define GCORE_GRAPH_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/ppg.h"
#include "graph/stats.h"
#include "snb/table.h"

namespace gcore {

class GraphSnapshot;

class GraphCatalog {
 public:
  GraphCatalog() : ids_(std::make_shared<IdAllocator>()) {}

  /// Registers (or replaces) a named graph.
  void RegisterGraph(const std::string& name, PathPropertyGraph graph);
  /// Registers a graph together with precomputed statistics (e.g. a
  /// GraphBuilder's incrementally collected GraphBuilder::Stats()),
  /// seeding the cache Stats() reads so no collection scan runs later.
  void RegisterGraph(const std::string& name, PathPropertyGraph graph,
                     GraphStats stats);

  /// gr(gid). NotFound when unregistered.
  Result<const PathPropertyGraph*> Lookup(const std::string& name) const;
  bool HasGraph(const std::string& name) const;
  void DropGraph(const std::string& name);
  std::vector<std::string> GraphNames() const;

  /// Default graph used when MATCH has no ON clause (Section 3: "Systems
  /// may omit ON if there is a default graph").
  void SetDefaultGraph(const std::string& name) { default_graph_ = name; }
  const std::string& default_graph() const { return default_graph_; }

  /// Tabular inputs for the Section 5 extensions (FROM <table>,
  /// MATCH (o) ON <table>).
  void RegisterTable(const std::string& name, Table table);
  Result<const Table*> LookupTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// Statistics of a registered graph (graph/stats.h), computed on first
  /// use and cached until the graph is re-registered or dropped.
  /// NotFound when the graph is unregistered. Collection is one linear
  /// scan whose cost (including the per-key distinct-value sets) is
  /// proportional to the graph's own label/property payload — for
  /// query-local graphs (ON subqueries) that is a constant factor on
  /// the materialization that just produced them.
  Result<const GraphStats*> Stats(const std::string& name);

  /// Columnar snapshot of a registered graph (graph/snapshot.h), built on
  /// first use and cached until the graph is re-registered or dropped —
  /// the same lifetime as the stats cache, and in fact Stats() derives
  /// uncached statistics from this snapshot with a column sweep, so the
  /// two caches always describe the same graph state. Shared ownership:
  /// in-flight queries keep their snapshot alive across a re-register.
  /// NotFound when the graph is unregistered.
  Result<std::shared_ptr<const GraphSnapshot>> Snapshot(
      const std::string& name);

  /// Session-wide identifier allocator shared by all graphs.
  IdAllocator* ids() { return ids_.get(); }
  std::shared_ptr<IdAllocator> ids_ptr() { return ids_; }

 private:
  std::shared_ptr<IdAllocator> ids_;
  std::map<std::string, PathPropertyGraph> graphs_;
  std::map<std::string, Table> tables_;
  std::map<std::string, GraphStats> stats_cache_;
  std::map<std::string, std::shared_ptr<const GraphSnapshot>> snapshot_cache_;
  std::string default_graph_;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_CATALOG_H_
