// Snapshot persistence: GraphSnapshot's flat arena to and from disk.
//
// The on-disk format is a small file header — magic, format version,
// payload size, FNV-1a checksum — followed by the arena bytes verbatim.
// Because the arena is position-independent (offset-addressed regions, no
// pointers), the payload needs no rewriting in either direction: saving
// is one write of arena(), loading is attaching a GraphSnapshot over the
// bytes wherever they land. Two loaders cover the two placements:
//
//   * LoadSnapshotFile — reads the payload into a heap buffer and
//     verifies the checksum; the safe default.
//   * MmapSnapshotFile — maps the file read-only and attaches zero-copy,
//     so load cost is O(metadata) and pages fault in on first touch. The
//     checksum is skipped by default (verifying would touch every page,
//     defeating the laziness); opt in for untrusted files.
//
// Both loaders run the full structural validation in
// GraphSnapshot::Attach, so a corrupt or truncated image fails with
// InvalidArgument rather than undefined reads. The version field rejects
// images from other format revisions outright — the arena layout is not
// migrated, a stale file must be re-frozen from its source graph (see
// ROADMAP.md, "Arena snapshot format").
#ifndef GCORE_GRAPH_SNAPSHOT_IO_H_
#define GCORE_GRAPH_SNAPSHOT_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "graph/snapshot.h"

namespace gcore {

/// Writes `snap`'s arena to `path` (replacing any existing file).
Status SaveSnapshot(const GraphSnapshot& snap, const std::string& path);

/// Reads a saved snapshot into memory, verifying the checksum.
Result<std::shared_ptr<GraphSnapshot>> LoadSnapshotFile(
    const std::string& path);

/// Maps a saved snapshot read-only and attaches zero-copy. The mapping
/// lives as long as any copy of the returned snapshot's arena. Set
/// `verify_checksum` to pay one full read up front in exchange for
/// integrity checking (off by default — it forfeits the lazy paging that
/// is the point of mmap).
Result<std::shared_ptr<GraphSnapshot>> MmapSnapshotFile(
    const std::string& path, bool verify_checksum = false);

}  // namespace gcore

#endif  // GCORE_GRAPH_SNAPSHOT_IO_H_
