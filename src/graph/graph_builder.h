// Convenience construction API over PathPropertyGraph, plus the shared
// identifier allocator.
//
// All graphs in one engine session draw identities from a single
// IdAllocator so that query outputs can share objects with inputs and the
// graph-level set operations of Appendix A.5 are meaningful.
#ifndef GCORE_GRAPH_GRAPH_BUILDER_H_
#define GCORE_GRAPH_GRAPH_BUILDER_H_

#include <atomic>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "graph/ppg.h"
#include "graph/stats.h"

namespace gcore {

/// Monotonic source of fresh node/edge/path identifiers. Thread-safe.
class IdAllocator {
 public:
  NodeId NextNode() { return NodeId(next_node_++); }
  EdgeId NextEdge() { return EdgeId(next_edge_++); }
  PathId NextPath() { return PathId(next_path_++); }

  /// Atomically reserves `count` consecutive path ids and returns the
  /// first. Morsel-parallel PathSearch stages expand with temporary ids,
  /// then remap them into one reserved range in morsel order, so fresh
  /// path identifiers stay deterministic at every parallelism degree.
  uint64_t ReservePathRange(uint64_t count) {
    return next_path_.fetch_add(count);
  }

  /// Makes sure future ids are strictly greater than `v`; used when a graph
  /// is loaded with externally chosen ids (e.g. the paper's toy instances
  /// use 101..106 / 201..207 / 301).
  void ReserveNodeUpTo(uint64_t v);
  void ReserveEdgeUpTo(uint64_t v);
  void ReservePathUpTo(uint64_t v);

 private:
  std::atomic<uint64_t> next_node_{1};
  std::atomic<uint64_t> next_edge_{1};
  std::atomic<uint64_t> next_path_{1};
};

/// One (key, single value) pair for the initializer-list helpers.
struct Prop {
  std::string key;
  Value value;

  Prop(std::string k, Value v) : key(std::move(k)), value(std::move(v)) {}
  Prop(std::string k, const char* v)
      : key(std::move(k)), value(Value::String(v)) {}
  Prop(std::string k, std::string v)
      : key(std::move(k)), value(Value::String(std::move(v))) {}
  Prop(std::string k, int64_t v) : key(std::move(k)), value(Value::Int(v)) {}
  Prop(std::string k, int v) : key(std::move(k)), value(Value::Int(v)) {}
  Prop(std::string k, double v)
      : key(std::move(k)), value(Value::Double(v)) {}
  Prop(std::string k, bool v) : key(std::move(k)), value(Value::Bool(v)) {}
};

/// Fluent builder used by tests, examples and the data generators.
class GraphBuilder {
 public:
  GraphBuilder(std::string name, IdAllocator* ids)
      : graph_(std::move(name)), ids_(ids) {}

  /// Adds a fresh node with the given labels and single-valued properties.
  NodeId AddNode(std::initializer_list<std::string> labels = {},
                 std::initializer_list<Prop> props = {});
  /// Adds a node with an externally chosen id (toy instances).
  NodeId AddNodeWithId(uint64_t raw_id,
                       std::initializer_list<std::string> labels = {},
                       std::initializer_list<Prop> props = {});

  /// Adds a value to a (possibly multi-valued) node property.
  void AddNodePropertyValue(NodeId node, const std::string& key, Value value);

  /// Adds a fresh edge src -> dst.
  EdgeId AddEdge(NodeId src, NodeId dst, const std::string& label,
                 std::initializer_list<Prop> props = {});

  /// Adds a value to a (possibly multi-valued) edge property.
  void AddEdgePropertyValue(EdgeId edge, const std::string& key, Value value);
  EdgeId AddEdgeWithId(uint64_t raw_id, NodeId src, NodeId dst,
                       const std::string& label,
                       std::initializer_list<Prop> props = {});

  /// Adds a stored path over existing nodes/edges.
  Result<PathId> AddPath(const std::vector<NodeId>& nodes,
                         const std::vector<EdgeId>& edges,
                         std::initializer_list<std::string> labels = {},
                         std::initializer_list<Prop> props = {});
  Result<PathId> AddPathWithId(uint64_t raw_id,
                               const std::vector<NodeId>& nodes,
                               const std::vector<EdgeId>& edges,
                               std::initializer_list<std::string> labels = {},
                               std::initializer_list<Prop> props = {});

  PathPropertyGraph& graph() { return graph_; }
  const PathPropertyGraph& graph() const { return graph_; }
  /// Moves the built graph out.
  PathPropertyGraph Build() { return std::move(graph_); }

  /// Opt-in incremental statistics: call before the first Add* and the
  /// builder streams every object into a StatsCollector as it is added,
  /// so large loads can register with their statistics precomputed
  /// (GraphCatalog::RegisterGraph(name, graph, stats)) without a second
  /// scan. Off by default — distinct-value tracking retains a copy of
  /// every property value, which throwaway graphs should not pay for.
  /// Reflects builder-API mutations only: editing graph() directly
  /// bypasses the collector.
  GraphBuilder& EnableStatsCollection() {
    collect_stats_ = true;
    return *this;
  }

  /// Statistics of the graph built so far: the incremental collector's
  /// snapshot when enabled, otherwise a full collection scan (identical
  /// result either way, pinned by tests/graph/stats_test.cc).
  GraphStats Stats() const {
    return collect_stats_ ? stats_.Finish() : GraphStats::Collect(graph_);
  }

 private:
  void ApplyLabelsProps(NodeId id, std::initializer_list<std::string> labels,
                        std::initializer_list<Prop> props);

  PathPropertyGraph graph_;
  IdAllocator* ids_;
  bool collect_stats_ = false;
  StatsCollector stats_;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_GRAPH_BUILDER_H_
