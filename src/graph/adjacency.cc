#include "graph/adjacency.h"

#include <algorithm>
#include <unordered_map>

namespace gcore {

AdjacencyIndex::AdjacencyIndex(const PathPropertyGraph& graph) {
  node_ids_ = graph.NodeIds();  // already ascending (map iteration)
  std::unordered_map<NodeId, DenseNodeIndex> index_of;
  index_of.reserve(node_ids_.size());
  for (size_t i = 0; i < node_ids_.size(); ++i) {
    index_of.emplace(node_ids_[i], static_cast<DenseNodeIndex>(i));
  }

  const size_t n = node_ids_.size();
  std::vector<uint32_t> out_deg(n, 0);
  std::vector<uint32_t> in_deg(n, 0);
  graph.ForEachEdge([&](EdgeId, NodeId src, NodeId dst) {
    ++out_deg[index_of[src]];
    ++in_deg[index_of[dst]];
  });

  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    out_offsets_[i + 1] = out_offsets_[i] + out_deg[i];
    in_offsets_[i + 1] = in_offsets_[i] + in_deg[i];
  }
  out_entries_.resize(out_offsets_[n]);
  in_entries_.resize(in_offsets_[n]);

  // Dense edge numbering: ascending edge-id order, the same rule
  // GraphSnapshot::BuildEdges applies — the two numberings must agree so
  // entry.edge_dense indexes snapshot label spans and property columns.
  std::vector<EdgeId> edge_ids;
  edge_ids.reserve(graph.NumEdges());
  graph.ForEachEdge([&](EdgeId e, NodeId, NodeId) { edge_ids.push_back(e); });
  std::sort(edge_ids.begin(), edge_ids.end());
  auto dense_edge = [&](EdgeId e) {
    return static_cast<DenseEdgeIndex>(
        std::lower_bound(edge_ids.begin(), edge_ids.end(), e) -
        edge_ids.begin());
  };

  std::vector<uint32_t> out_pos(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<uint32_t> in_pos(in_offsets_.begin(), in_offsets_.end() - 1);
  graph.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    const DenseNodeIndex s = index_of[src];
    const DenseNodeIndex d = index_of[dst];
    const DenseEdgeIndex de = dense_edge(e);
    out_entries_[out_pos[s]++] = AdjacencyEntry{d, de, e, /*forward=*/true};
    in_entries_[in_pos[d]++] = AdjacencyEntry{s, de, e, /*forward=*/false};
  });

  // Deterministic neighbor order: by neighbor index, then edge id. This is
  // what makes "the" shortest path well-defined across runs (Appendix A.1
  // footnote 4 allows any fixed criterion).
  auto cmp = [](const AdjacencyEntry& a, const AdjacencyEntry& b) {
    if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
    return a.edge < b.edge;
  };
  for (size_t i = 0; i < n; ++i) {
    std::sort(out_entries_.begin() + out_offsets_[i],
              out_entries_.begin() + out_offsets_[i + 1], cmp);
    std::sort(in_entries_.begin() + in_offsets_[i],
              in_entries_.begin() + in_offsets_[i + 1], cmp);
  }

  view_.graph = &graph;
  view_.node_ids = node_ids_.data();
  view_.num_nodes = n;
  view_.num_edges = graph.NumEdges();
  view_.out_offsets = out_offsets_.data();
  view_.out_entries = out_entries_.data();
  view_.in_offsets = in_offsets_.data();
  view_.in_entries = in_entries_.data();
}

DenseNodeIndex AdjacencyIndex::IndexOf(NodeId id) const {
  const NodeId* begin = view_.node_ids;
  const NodeId* end = begin + view_.num_nodes;
  return static_cast<DenseNodeIndex>(std::lower_bound(begin, end, id) - begin);
}

bool AdjacencyIndex::Contains(NodeId id) const {
  const NodeId* begin = view_.node_ids;
  const NodeId* end = begin + view_.num_nodes;
  return std::binary_search(begin, end, id);
}

AdjacencyIndex::EntrySpan AdjacencyIndex::EdgesTo(EntrySpan span,
                                                  DenseNodeIndex neighbor) {
  const AdjacencyEntry* lo = std::lower_bound(
      span.begin, span.end, neighbor,
      [](const AdjacencyEntry& e, DenseNodeIndex n) { return e.neighbor < n; });
  const AdjacencyEntry* hi = std::upper_bound(
      lo, span.end, neighbor,
      [](DenseNodeIndex n, const AdjacencyEntry& e) { return n < e.neighbor; });
  return {lo, hi};
}

}  // namespace gcore
