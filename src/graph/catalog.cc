#include "graph/catalog.h"

namespace gcore {

size_t GraphStats::NodesWithLabel(const std::string& label) const {
  auto it = node_label_counts.find(label);
  return it == node_label_counts.end() ? 0 : it->second;
}

size_t GraphStats::EdgesWithLabel(const std::string& label) const {
  auto it = edge_label_counts.find(label);
  return it == edge_label_counts.end() ? 0 : it->second;
}

void GraphCatalog::RegisterGraph(const std::string& name,
                                 PathPropertyGraph graph) {
  graph.set_name(name);
  graphs_.insert_or_assign(name, std::move(graph));
  stats_cache_.erase(name);
}

Result<const PathPropertyGraph*> GraphCatalog::Lookup(
    const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  return &it->second;
}

bool GraphCatalog::HasGraph(const std::string& name) const {
  return graphs_.count(name) > 0;
}

void GraphCatalog::DropGraph(const std::string& name) {
  graphs_.erase(name);
  stats_cache_.erase(name);
}

Result<const GraphStats*> GraphCatalog::Stats(const std::string& name) {
  auto cached = stats_cache_.find(name);
  if (cached != stats_cache_.end()) return &cached->second;
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  const PathPropertyGraph& graph = it->second;
  GraphStats stats;
  stats.num_nodes = graph.NumNodes();
  stats.num_edges = graph.NumEdges();
  stats.num_paths = graph.NumPaths();
  graph.ForEachNode([&](NodeId id) {
    for (const auto& label : graph.Labels(id)) {
      ++stats.node_label_counts[label];
    }
  });
  graph.ForEachEdge([&](EdgeId id, NodeId, NodeId) {
    for (const auto& label : graph.Labels(id)) {
      ++stats.edge_label_counts[label];
    }
  });
  return &stats_cache_.emplace(name, std::move(stats)).first->second;
}

std::vector<std::string> GraphCatalog::GraphNames() const {
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, graph] : graphs_) names.push_back(name);
  return names;
}

void GraphCatalog::RegisterTable(const std::string& name, Table table) {
  tables_.insert_or_assign(name, std::move(table));
}

Result<const Table*> GraphCatalog::LookupTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' is not in the catalog");
  }
  return &it->second;
}

bool GraphCatalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

}  // namespace gcore
