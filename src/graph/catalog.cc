#include "graph/catalog.h"

#include "graph/snapshot.h"

namespace gcore {

void GraphCatalog::RegisterGraph(const std::string& name,
                                 PathPropertyGraph graph) {
  graph.set_name(name);
  graphs_.insert_or_assign(name, std::move(graph));
  // Stats and snapshot describe the replaced graph state — drop both.
  stats_cache_.erase(name);
  snapshot_cache_.erase(name);
}

void GraphCatalog::RegisterGraph(const std::string& name,
                                 PathPropertyGraph graph, GraphStats stats) {
  RegisterGraph(name, std::move(graph));
  stats_cache_.insert_or_assign(name, std::move(stats));
}

Result<const PathPropertyGraph*> GraphCatalog::Lookup(
    const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  return &it->second;
}

bool GraphCatalog::HasGraph(const std::string& name) const {
  return graphs_.count(name) > 0;
}

void GraphCatalog::DropGraph(const std::string& name) {
  graphs_.erase(name);
  stats_cache_.erase(name);
  snapshot_cache_.erase(name);
}

Result<const GraphStats*> GraphCatalog::Stats(const std::string& name) {
  auto cached = stats_cache_.find(name);
  if (cached != stats_cache_.end()) return &cached->second;
  auto snapshot = Snapshot(name);
  if (!snapshot.ok()) return snapshot.status();
  return &stats_cache_
              .emplace(name, GraphStats::CollectFromSnapshot(**snapshot))
              .first->second;
}

Result<std::shared_ptr<const GraphSnapshot>> GraphCatalog::Snapshot(
    const std::string& name) {
  auto cached = snapshot_cache_.find(name);
  if (cached != snapshot_cache_.end()) return cached->second;
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  return snapshot_cache_
      .emplace(name, std::make_shared<const GraphSnapshot>(it->second))
      .first->second;
}

std::vector<std::string> GraphCatalog::GraphNames() const {
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, graph] : graphs_) names.push_back(name);
  return names;
}

void GraphCatalog::RegisterTable(const std::string& name, Table table) {
  tables_.insert_or_assign(name, std::move(table));
}

Result<const Table*> GraphCatalog::LookupTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' is not in the catalog");
  }
  return &it->second;
}

bool GraphCatalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

}  // namespace gcore
