#include "graph/catalog.h"

#include <utility>

#include "graph/snapshot.h"
#include "graph/snapshot_io.h"

namespace gcore {

void GraphCatalog::RegisterGraphImpl(
    const std::string& name, PathPropertyGraph graph,
    std::shared_ptr<const GraphStats> stats, bool from_table) {
  graph.set_name(name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = graphs_[name];
    Entry old = std::move(entry);
    entry.graph =
        std::make_shared<const PathPropertyGraph>(std::move(graph));
    entry.version = next_version_++;
    entry.stats = std::move(stats);
    entry.snapshot = nullptr;
    entry.from_table = from_table;
    ++mutation_epoch_;
    RetireLocked(std::move(old));
  }
  NotifyInvalidation(name);
}

void GraphCatalog::RegisterGraph(const std::string& name,
                                 PathPropertyGraph graph) {
  RegisterGraphImpl(name, std::move(graph), nullptr, /*from_table=*/false);
}

void GraphCatalog::RegisterGraph(const std::string& name,
                                 PathPropertyGraph graph, GraphStats stats) {
  RegisterGraphImpl(name, std::move(graph),
                    std::make_shared<const GraphStats>(std::move(stats)),
                    /*from_table=*/false);
}

void GraphCatalog::RegisterGraphFromTable(const std::string& name,
                                          PathPropertyGraph graph) {
  RegisterGraphImpl(name, std::move(graph), nullptr, /*from_table=*/true);
}

Status GraphCatalog::RegisterSnapshotFile(const std::string& name,
                                          const std::string& path,
                                          bool use_mmap) {
  GCORE_ASSIGN_OR_RETURN(std::shared_ptr<GraphSnapshot> snap,
                         use_mmap ? MmapSnapshotFile(path)
                                  : LoadSnapshotFile(path));
  // Rebuild the PPG the image describes and bind it, so the evaluation
  // tail that reads the source graph (CONSTRUCT, expression eval over
  // stored paths) works exactly as on a freshly registered graph.
  auto graph = std::make_shared<const PathPropertyGraph>(
      snap->ReconstructGraph(name));
  snap->BindGraph(graph);

  // Loaded ids were chosen by the saving session; keep this session's
  // allocator from re-issuing them.
  const auto node_ids = graph->NodeIds();
  if (!node_ids.empty()) ids_->ReserveNodeUpTo(node_ids.back().value());
  const auto edge_ids = graph->EdgeIds();
  if (!edge_ids.empty()) ids_->ReserveEdgeUpTo(edge_ids.back().value());
  const auto path_ids = graph->PathIds();
  if (!path_ids.empty()) ids_->ReservePathUpTo(path_ids.back().value());

  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = graphs_[name];
    Entry old = std::move(entry);
    entry.graph = std::move(graph);
    entry.version = next_version_++;
    entry.stats = nullptr;
    entry.snapshot = std::move(snap);  // pre-seeded: no freeze on first read
    entry.from_table = false;
    ++mutation_epoch_;
    RetireLocked(std::move(old));
  }
  NotifyInvalidation(name);
  return Status::OK();
}

Result<const PathPropertyGraph*> GraphCatalog::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  return it->second.graph.get();
}

Result<std::shared_ptr<const PathPropertyGraph>> GraphCatalog::LookupShared(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  return it->second.graph;
}

bool GraphCatalog::HasGraph(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.count(name) > 0;
}

void GraphCatalog::DropGraph(const std::string& name) {
  bool existed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(name);
    if (it != graphs_.end()) {
      existed = true;
      RetireLocked(std::move(it->second));
      graphs_.erase(it);
      ++mutation_epoch_;
    }
  }
  if (existed) NotifyInvalidation(name);
}

uint64_t GraphCatalog::MutationEpoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mutation_epoch_;
}

uint64_t GraphCatalog::GraphVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? 0 : it->second.version;
}

void GraphCatalog::SetDefaultGraph(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  default_graph_ = name;
}

std::string GraphCatalog::default_graph() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_graph_;
}

Result<std::shared_ptr<const GraphStats>> GraphCatalog::Stats(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      return Status::NotFound("graph '" + name + "' is not in the catalog");
    }
    if (it->second.stats != nullptr) return it->second.stats;
  }
  GCORE_ASSIGN_OR_RETURN(std::shared_ptr<const GraphSnapshot> snapshot,
                         Snapshot(name));
  // Collect outside the lock: a first stats sweep over a large graph
  // must not block concurrent lookups on every other graph. Concurrent
  // first requests may each collect once; the publish below keeps one.
  auto stats = std::make_shared<const GraphStats>(
      GraphStats::CollectFromSnapshot(*snapshot));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  // Publish only when the entry's snapshot is the one we collected from
  // (re-registration nulls it, so identity implies same graph version);
  // otherwise hand the caller its own consistent copy unpublished.
  if (it != graphs_.end() && it->second.snapshot == snapshot) {
    if (it->second.stats == nullptr) it->second.stats = stats;
    return it->second.stats;
  }
  return stats;
}

Result<std::shared_ptr<const GraphSnapshot>> GraphCatalog::Snapshot(
    const std::string& name) {
  std::shared_ptr<const PathPropertyGraph> graph;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      return Status::NotFound("graph '" + name + "' is not in the catalog");
    }
    if (it->second.snapshot != nullptr) return it->second.snapshot;
    graph = it->second.graph;
  }
  // Freeze outside the lock (same head-of-line rationale as Stats).
  auto snapshot = std::make_shared<const GraphSnapshot>(*graph);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  // Publish only when the entry still holds the image we froze; a
  // graph replaced mid-build keeps the new entry's snapshot slot empty
  // for a fresh freeze, and the caller gets the copy matching the image
  // it started from.
  if (it != graphs_.end() && it->second.graph == graph) {
    if (it->second.snapshot == nullptr) it->second.snapshot = snapshot;
    return it->second.snapshot;
  }
  return snapshot;
}

std::vector<std::string> GraphCatalog::GraphNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) names.push_back(name);
  return names;
}

void GraphCatalog::RegisterTable(const std::string& name, Table table) {
  bool invalidate = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it != tables_.end()) {
      invalidate = true;
      if (active_readers_.load(std::memory_order_acquire) > 0) {
        retired_.push_back(std::move(it->second));
      }
    }
    tables_[name] = std::make_shared<const Table>(std::move(table));
    // A node graph synthesized from the previous table contents
    // (Matcher::ResolveGraph on "ON <table>") is now stale: drop it so
    // the next reference re-synthesizes under a fresh version, making
    // plan-cache entries recorded against it miss their version check.
    auto git = graphs_.find(name);
    if (git != graphs_.end() && git->second.from_table) {
      RetireLocked(std::move(git->second));
      graphs_.erase(git);
      invalidate = true;
    }
    ++mutation_epoch_;
  }
  if (invalidate) NotifyInvalidation(name);
}

Result<const Table*> GraphCatalog::LookupTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' is not in the catalog");
  }
  return it->second.get();
}

bool GraphCatalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0;
}

uint64_t GraphCatalog::AddInvalidationListener(
    std::function<void(const std::string&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_listener_++;
  listeners_.emplace(id, std::move(fn));
  return id;
}

void GraphCatalog::RemoveInvalidationListener(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(id);
}

void GraphCatalog::NotifyInvalidation(const std::string& name) {
  // Copy the listeners out so callbacks run outside the catalog mutex
  // (they typically take their own lock, e.g. the plan cache's).
  std::vector<std::function<void(const std::string&)>> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns.reserve(listeners_.size());
    for (const auto& [id, fn] : listeners_) fns.push_back(fn);
  }
  for (const auto& fn : fns) fn(name);
}

void GraphCatalog::RetireLocked(Entry entry) {
  if (active_readers_.load(std::memory_order_acquire) > 0) {
    if (entry.graph != nullptr) retired_.push_back(std::move(entry.graph));
    if (entry.stats != nullptr) retired_.push_back(std::move(entry.stats));
    if (entry.snapshot != nullptr) {
      retired_.push_back(std::move(entry.snapshot));
    }
  }
  // Otherwise `entry` destructs here — no reader can hold a raw pointer.
}

void GraphCatalog::EnterReader() {
  active_readers_.fetch_add(1, std::memory_order_acq_rel);
}

void GraphCatalog::ExitReader() {
  if (active_readers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last reader out drains the retired epoch. Destruction happens
    // outside the lock; a shared_ptr still held elsewhere (a matcher pin)
    // defers that payload further, which is exactly the contract.
    std::vector<std::shared_ptr<const void>> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Re-check under the lock: between our decrement and acquiring mu_
      // a new reader can enter and Lookup() a raw pointer that a writer
      // then retires (RetireLocked observes the count under mu_ too, so
      // this handoff is race-free). If any reader is active now, leave
      // the list for that reader to drain on its own exit.
      if (active_readers_.load(std::memory_order_acquire) == 0) {
        drained.swap(retired_);
      }
    }
  }
}

size_t GraphCatalog::RetiredCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

}  // namespace gcore
