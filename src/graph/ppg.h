// The Path Property Graph (PPG): Definition 2.1 of the paper.
//
// A PPG is a tuple G = (N, E, P, ρ, δ, λ, σ) where N/E/P are disjoint
// identifier sets, ρ maps edges to (source, target) node pairs, δ maps path
// identifiers to concatenations of adjacent edges, λ assigns label sets to
// every object, and σ assigns a finite set of literals to (object,
// property-key) pairs.
//
// Identity is global: the same NodeId may be a member of several PPGs
// (query outputs share identities with their inputs — Section 3,
// "Construction that respects identities"). Each PPG stores its own λ and
// σ for its members; the graph-level set operations (graph_ops.h) merge
// them per Appendix A.5.
//
// Role in the engine: the PPG is the *mutable build representation* —
// GraphBuilder fills it, CONSTRUCT emits it, graph_ops combine it. The
// read path (scans, expansions, filters, stats) executes against the
// frozen columnar image derived from it, GraphSnapshot (snapshot.h);
// GraphCatalog caches one snapshot per registered graph and invalidates
// it together with the statistics on re-registration.
#ifndef GCORE_GRAPH_PPG_H_
#define GCORE_GRAPH_PPG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/id.h"
#include "common/result.h"
#include "common/value.h"

namespace gcore {

/// Sorted, deduplicated set of label names: an element of FSET(L).
class LabelSet {
 public:
  LabelSet() = default;
  explicit LabelSet(std::vector<std::string> labels);

  bool empty() const { return labels_.empty(); }
  size_t size() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }
  auto begin() const { return labels_.begin(); }
  auto end() const { return labels_.end(); }

  void Insert(const std::string& label);
  void Remove(const std::string& label);
  bool Contains(const std::string& label) const;

  /// Merges `other` into this set.
  void UnionWith(const LabelSet& other);
  /// Keeps only labels present in both.
  void IntersectWith(const LabelSet& other);

  friend bool operator==(const LabelSet& a, const LabelSet& b) {
    return a.labels_ == b.labels_;
  }

  /// ":A:B" rendering; empty string when no labels.
  std::string ToString() const;

 private:
  std::vector<std::string> labels_;  // sorted unique
};

/// Property assignment for one object: key -> FSET(V). Absent key == empty
/// set.
class PropertyMap {
 public:
  /// The set of values for `key`; empty set when undefined.
  const ValueSet& Get(const std::string& key) const;
  /// Replaces the value set of `key` (empty set erases).
  void Set(const std::string& key, ValueSet values);
  /// Adds one value to the set of `key`.
  void Add(const std::string& key, Value value);
  void Remove(const std::string& key);
  bool Has(const std::string& key) const;

  const std::map<std::string, ValueSet>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// Per-key set union with `other`.
  void UnionWith(const PropertyMap& other);
  /// Per-key set intersection with `other` (drops keys that become empty).
  void IntersectWith(const PropertyMap& other);

  friend bool operator==(const PropertyMap& a, const PropertyMap& b) {
    return a.entries_ == b.entries_;
  }

  /// "{k1: v1, k2: v2}" rendering.
  std::string ToString() const;

 private:
  std::map<std::string, ValueSet> entries_;
};

/// δ(p): the body of a stored path — the list [a1, e1, a2, ..., en, an+1].
/// Stored as the node list and edge list (nodes(p), edges(p) of Section 2).
/// A zero-length path has one node and no edges.
struct PathBody {
  std::vector<NodeId> nodes;  // n + 1 entries
  std::vector<EdgeId> edges;  // n entries

  /// Number of edges (the paper's length(L)).
  size_t Length() const { return edges.size(); }

  friend bool operator==(const PathBody& a, const PathBody& b) {
    return a.nodes == b.nodes && a.edges == b.edges;
  }
};

/// An in-memory PPG. Mutation is restricted to adding members and editing
/// labels/properties; structural identity (ρ of an edge, δ of a path) is
/// fixed at insertion, as required by the model ("changing the source and
/// destination of an edge violates its identity", Section 3).
class PathPropertyGraph {
 public:
  PathPropertyGraph() = default;
  explicit PathPropertyGraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- membership ----------------------------------------------------------

  bool HasNode(NodeId id) const { return nodes_.count(id) > 0; }
  bool HasEdge(EdgeId id) const { return edges_.count(id) > 0; }
  bool HasPath(PathId id) const { return paths_.count(id) > 0; }

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  size_t NumPaths() const { return paths_.size(); }
  bool Empty() const {
    return nodes_.empty() && edges_.empty() && paths_.empty();
  }

  // --- insertion -----------------------------------------------------------

  /// Adds node `id`; no-op if already present.
  void AddNode(NodeId id);
  /// Adds edge `id` with endpoints ρ(id) = (src, dst). Endpoints must be
  /// members of this graph. Re-adding with different endpoints is an error
  /// (identity violation).
  Status AddEdge(EdgeId id, NodeId src, NodeId dst);
  /// Adds stored path `id` with body δ(id). The body must be a valid
  /// concatenation of adjacent member edges (condition (3) of
  /// Definition 2.1); edges may be traversed in either direction.
  Status AddPath(PathId id, PathBody body);

  // --- structure access ----------------------------------------------------

  /// ρ(e). Edge must exist.
  std::pair<NodeId, NodeId> EdgeEndpoints(EdgeId id) const;
  NodeId EdgeSource(EdgeId id) const { return EdgeEndpoints(id).first; }
  NodeId EdgeTarget(EdgeId id) const { return EdgeEndpoints(id).second; }

  /// δ(p). Path must exist.
  const PathBody& Path(PathId id) const;

  // --- λ and σ -------------------------------------------------------------

  const LabelSet& Labels(NodeId id) const;
  const LabelSet& Labels(EdgeId id) const;
  const LabelSet& Labels(PathId id) const;

  void AddLabel(NodeId id, const std::string& label);
  void AddLabel(EdgeId id, const std::string& label);
  void AddLabel(PathId id, const std::string& label);
  void RemoveLabel(NodeId id, const std::string& label);
  void RemoveLabel(EdgeId id, const std::string& label);
  void RemoveLabel(PathId id, const std::string& label);
  void SetLabels(NodeId id, LabelSet labels);
  void SetLabels(EdgeId id, LabelSet labels);
  void SetLabels(PathId id, LabelSet labels);

  const PropertyMap& Properties(NodeId id) const;
  const PropertyMap& Properties(EdgeId id) const;
  const PropertyMap& Properties(PathId id) const;

  /// σ(x, k); the empty set when the property is absent.
  const ValueSet& Property(NodeId id, const std::string& key) const;
  const ValueSet& Property(EdgeId id, const std::string& key) const;
  const ValueSet& Property(PathId id, const std::string& key) const;

  void SetProperty(NodeId id, const std::string& key, ValueSet values);
  void SetProperty(EdgeId id, const std::string& key, ValueSet values);
  void SetProperty(PathId id, const std::string& key, ValueSet values);
  void RemoveProperty(NodeId id, const std::string& key);
  void RemoveProperty(EdgeId id, const std::string& key);
  void RemoveProperty(PathId id, const std::string& key);
  void SetProperties(NodeId id, PropertyMap props);
  void SetProperties(EdgeId id, PropertyMap props);
  void SetProperties(PathId id, PropertyMap props);

  // --- iteration (deterministic, ordered by id) -----------------------------

  std::vector<NodeId> NodeIds() const;
  std::vector<EdgeId> EdgeIds() const;
  std::vector<PathId> PathIds() const;

  template <typename Fn>
  void ForEachNode(Fn fn) const {
    for (const auto& [id, data] : nodes_) fn(id);
  }
  template <typename Fn>
  void ForEachEdge(Fn fn) const {
    for (const auto& [id, data] : edges_) fn(id, data.src, data.dst);
  }
  template <typename Fn>
  void ForEachPath(Fn fn) const {
    for (const auto& [id, data] : paths_) fn(id, data.body);
  }

  /// Checks internal consistency: edge endpoints and path bodies refer to
  /// members, and path bodies satisfy condition (3) of Definition 2.1.
  Status Validate() const;

  /// Multi-line debug rendering of the full graph.
  std::string ToString() const;

 private:
  struct ObjectData {
    LabelSet labels;
    PropertyMap props;
  };
  struct NodeData : ObjectData {};
  struct EdgeData : ObjectData {
    NodeId src;
    NodeId dst;
  };
  struct PathData : ObjectData {
    PathBody body;
  };

  std::string name_;
  std::map<NodeId, NodeData> nodes_;
  std::map<EdgeId, EdgeData> edges_;
  std::map<PathId, PathData> paths_;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_PPG_H_
