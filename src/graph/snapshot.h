// The immutable columnar snapshot the read path executes against.
//
// A PathPropertyGraph stores Definition 2.1 directly — ordered maps from
// ids to label sets and per-key ValueSets — which is the right shape for
// construction and CONSTRUCT-time mutation, but pointer-chases on every
// admission check. A GraphSnapshot freezes one PPG into scan-friendly
// arrays (the Katana PropertyGraph layout: compact CSR topology plus
// typed property columns):
//
//   * dense node/edge numbering (ascending id order, shared with the
//     embedded AdjacencyIndex, so path finders and the snapshot agree on
//     dense indices);
//   * interned label ids with per-object sorted label-id spans, and a
//     per-label sorted node/edge index list — NodeScan (a:Person)
//     iterates one contiguous span instead of filtering every node;
//   * one typed property column per (object class, key): a kind tag plus
//     a 64-bit slot per object, mirroring BindingTable's column layout,
//     with multi-valued / non-inlinable ValueSets out of line in an
//     overflow vector (the FSET(V) semantics of Section 2 survive
//     unchanged — a column cell *is* σ(x, k), just stored columnar).
//
// Invalidation: a snapshot is valid for exactly the graph state it was
// built from. GraphCatalog caches one snapshot per registered graph next
// to its GraphStats and drops both on RegisterGraph/DropGraph; the
// Matcher's per-query cache keys by graph pointer and dies with the
// query. CONSTRUCT and the builder APIs keep mutating the PPG — they
// never see a snapshot.
#ifndef GCORE_GRAPH_SNAPSHOT_H_
#define GCORE_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "graph/adjacency.h"
#include "graph/ppg.h"

namespace gcore {

// DenseEdgeIndex (adjacency.h) is the snapshot's edge numbering too:
// both number edges by ascending id, and AdjacencyEntry::edge_dense is
// built by the same rule, so entries index snapshot arrays directly.

class GraphSnapshot {
 public:
  /// Sentinel for "label/string not interned in this snapshot".
  static constexpr uint32_t kNoLabel = ~uint32_t{0};
  static constexpr uint32_t kNoString = ~uint32_t{0};
  /// Sentinel for "edge id not a member of this snapshot".
  static constexpr DenseEdgeIndex kNoEdge = ~DenseEdgeIndex{0};

  /// Cell tag of a property column. kAbsent is σ(x, k) = ∅; the middle
  /// kinds inline a singleton set into the 64-bit slot; kOverflow points
  /// the slot at an out-of-line ValueSet (multi-valued sets, plus rare
  /// singletons the slot cannot encode, e.g. non-calendar dates).
  enum class PropKind : uint8_t {
    kAbsent = 0,
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,  // slot = interned string-pool id
    kDate,    // slot = days since epoch
    kOverflow,
  };

  /// Borrowed view over a snapshot-owned array.
  template <typename T>
  struct Span {
    const T* data = nullptr;
    size_t count = 0;
    const T* begin() const { return data; }
    const T* end() const { return data + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    T operator[](size_t i) const { return data[i]; }
  };

  /// One property key over one object class: a kind tag and a 64-bit
  /// slot per dense object index (BindingTable's column layout), heavy
  /// cells out of line.
  class PropertyColumn {
   public:
    size_t size() const { return kinds_.size(); }
    PropKind KindAt(size_t i) const {
      return static_cast<PropKind>(kinds_[i]);
    }
    bool AbsentAt(size_t i) const { return KindAt(i) == PropKind::kAbsent; }
    uint64_t SlotAt(size_t i) const { return slots_[i]; }
    bool BoolAt(size_t i) const { return slots_[i] != 0; }
    int64_t IntAt(size_t i) const { return static_cast<int64_t>(slots_[i]); }
    double DoubleAt(size_t i) const;
    int64_t DateDaysAt(size_t i) const {
      return static_cast<int64_t>(slots_[i]);
    }
    uint32_t StringIdAt(size_t i) const {
      return static_cast<uint32_t>(slots_[i]);
    }
    const ValueSet& OverflowAt(size_t i) const {
      return overflow_[slots_[i]];
    }
    /// Cells with a non-empty value set.
    size_t num_carriers() const { return num_carriers_; }

   private:
    friend class GraphSnapshot;
    std::vector<uint8_t> kinds_;
    std::vector<uint64_t> slots_;
    std::vector<ValueSet> overflow_;
    size_t num_carriers_ = 0;
  };

  /// Freezes the current state of `graph`. O(graph payload).
  explicit GraphSnapshot(const PathPropertyGraph& graph);

  const PathPropertyGraph& graph() const { return adj_.graph(); }
  /// The CSR out/in topology (same dense node numbering as the rest of
  /// the snapshot); path finders keep consuming this type directly.
  const AdjacencyIndex& adjacency() const { return adj_; }

  size_t num_nodes() const { return adj_.num_nodes(); }
  size_t num_edges() const { return edge_ids_.size(); }

  // --- labels ----------------------------------------------------------------

  /// Labels of nodes and edges, interned. Ids are assigned in sorted name
  /// order, so a translated label list is sorted iff the name list was.
  size_t num_labels() const { return label_names_.size(); }
  const std::string& LabelName(uint32_t id) const { return label_names_[id]; }
  /// kNoLabel when the name occurs nowhere in the graph.
  uint32_t LabelId(const std::string& name) const;

  /// Sorted interned-label ids of one object.
  Span<uint32_t> NodeLabelIds(DenseNodeIndex n) const {
    return {node_label_ids_.data() + node_label_offsets_[n],
            node_label_offsets_[n + 1] - node_label_offsets_[n]};
  }
  Span<uint32_t> EdgeLabelIds(DenseEdgeIndex e) const {
    return {edge_label_ids_.data() + edge_label_offsets_[e],
            edge_label_offsets_[e + 1] - edge_label_offsets_[e]};
  }
  bool NodeHasLabel(DenseNodeIndex n, uint32_t label) const;
  bool EdgeHasLabel(DenseEdgeIndex e, uint32_t label) const;

  /// All dense node indices carrying `label`, ascending (== ascending
  /// node id — the order ForEachNode visits); label scans iterate this
  /// span instead of the whole node range.
  Span<DenseNodeIndex> NodesWithLabel(uint32_t label) const {
    return {label_nodes_.data() + label_node_offsets_[label],
            label_node_offsets_[label + 1] - label_node_offsets_[label]};
  }
  Span<DenseEdgeIndex> EdgesWithLabel(uint32_t label) const {
    return {label_edges_.data() + label_edge_offsets_[label],
            label_edge_offsets_[label + 1] - label_edge_offsets_[label]};
  }

  // --- edges -----------------------------------------------------------------

  EdgeId EdgeIdOf(DenseEdgeIndex e) const { return edge_ids_[e]; }
  /// Dense index of `id` (binary search over the ascending id array —
  /// no per-edge hash map); requires the edge to be a member.
  DenseEdgeIndex EdgeIndexOf(EdgeId id) const;
  /// Dense index of `id`, or kNoEdge when the edge is not a member.
  DenseEdgeIndex FindEdge(EdgeId id) const;
  DenseNodeIndex EdgeSrc(DenseEdgeIndex e) const { return edge_src_[e]; }
  DenseNodeIndex EdgeDst(DenseEdgeIndex e) const { return edge_dst_[e]; }

  // --- property columns ------------------------------------------------------

  /// Column of `key` over nodes/edges; null when no object carries the
  /// key (σ(x, key) = ∅ for every x).
  const PropertyColumn* NodeColumn(const std::string& key) const;
  const PropertyColumn* EdgeColumn(const std::string& key) const;
  const std::map<std::string, PropertyColumn>& node_columns() const {
    return node_columns_;
  }
  const std::map<std::string, PropertyColumn>& edge_columns() const {
    return edge_columns_;
  }

  /// Numeric fast-path view over one edge property column, for weighted
  /// path kernels: a `COST x.w` expression over int/double singletons
  /// reduces to one kind-byte test and one slot read per edge, keyed by
  /// the dense edge index the adjacency entries already carry. Non-numeric
  /// and absent cells yield nullopt ("traversal has no weight here").
  struct EdgeWeightView {
    const PropertyColumn* col = nullptr;
    bool valid() const { return col != nullptr; }
    std::optional<double> At(DenseEdgeIndex e) const {
      if (col == nullptr) return std::nullopt;
      switch (col->KindAt(e)) {
        case PropKind::kInt:
          return static_cast<double>(col->IntAt(e));
        case PropKind::kDouble:
          return col->DoubleAt(e);
        default:
          return std::nullopt;
      }
    }
  };
  /// Weight view of edge key `key`; `valid()` is false when no edge
  /// carries the key.
  EdgeWeightView EdgeWeights(const std::string& key) const {
    return EdgeWeightView{EdgeColumn(key)};
  }

  // --- string pool -----------------------------------------------------------

  const std::string& StringAt(uint32_t id) const { return strings_[id]; }
  /// Pool id of `s`, or kNoString when no inline cell holds it (pushed
  /// string-equality filters pre-resolve their literal once and then
  /// compare 32-bit ids per row).
  uint32_t InternedString(const std::string& s) const;

  // --- cell semantics --------------------------------------------------------
  // These reproduce ValueSet/Value semantics over encoded cells so the
  // matcher's admission checks and the vectorized pushed filters never
  // materialize a ValueSet.

  /// σ(x, k).Contains(v) on cell `i` of `col`.
  bool CellContains(const PropertyColumn& col, size_t i,
                    const Value& v) const;
  /// σ(x, k) == {v}: true only for a singleton cell equal to `v`.
  bool CellEqualsSingleton(const PropertyColumn& col, size_t i,
                           const Value& v) const;
  /// Value::Compare of the cell's singleton against `v`; `ok` is set
  /// false (and 0 returned) when the cell is not a singleton.
  int CompareCellSingleton(const PropertyColumn& col, size_t i,
                           const Value& v, bool* ok) const;
  /// Materializes the cell as a ValueSet (tests and slow paths only).
  ValueSet CellValues(const PropertyColumn& col, size_t i) const;

 private:
  void InternLabels(const PathPropertyGraph& graph);
  void BuildLabelTopology(const PathPropertyGraph& graph);
  void BuildEdges(const PathPropertyGraph& graph);
  void BuildPropertyColumns(const PathPropertyGraph& graph);
  /// Encodes one value set into (kind, slot), appending to the overflow
  /// vector / string pool as needed.
  void EncodeCell(const ValueSet& values, PropertyColumn* col, size_t i);

  AdjacencyIndex adj_;

  std::vector<std::string> label_names_;  // id -> name, sorted
  std::map<std::string, uint32_t> label_index_;

  // Per-object sorted label-id lists (CSR over objects).
  std::vector<uint32_t> node_label_offsets_;
  std::vector<uint32_t> node_label_ids_;
  std::vector<uint32_t> edge_label_offsets_;
  std::vector<uint32_t> edge_label_ids_;

  // Per-label sorted object-index lists (CSR over labels).
  std::vector<uint32_t> label_node_offsets_;
  std::vector<DenseNodeIndex> label_nodes_;
  std::vector<uint32_t> label_edge_offsets_;
  std::vector<DenseEdgeIndex> label_edges_;

  std::vector<EdgeId> edge_ids_;  // dense -> id, ascending
  std::vector<DenseNodeIndex> edge_src_;
  std::vector<DenseNodeIndex> edge_dst_;

  std::map<std::string, PropertyColumn> node_columns_;
  std::map<std::string, PropertyColumn> edge_columns_;

  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> string_index_;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_SNAPSHOT_H_
