// The immutable columnar snapshot the read path executes against.
//
// A PathPropertyGraph stores Definition 2.1 directly — ordered maps from
// ids to label sets and per-key ValueSets — which is the right shape for
// construction and CONSTRUCT-time mutation, but pointer-chases on every
// admission check. A GraphSnapshot freezes one PPG into scan-friendly
// arrays (the Katana PropertyGraph layout: compact CSR topology plus
// typed property columns):
//
//   * dense node/edge numbering (ascending id order, shared with the
//     embedded AdjacencyIndex, so path finders and the snapshot agree on
//     dense indices);
//   * interned label ids with per-object sorted label-id spans, and a
//     per-label sorted node/edge index list — NodeScan (a:Person)
//     iterates one contiguous span instead of filtering every node;
//   * one typed property column per (object class, key): a kind tag plus
//     a 64-bit slot per object, mirroring BindingTable's column layout,
//     with multi-valued / non-inlinable ValueSets out of line in an
//     overflow region (the FSET(V) semantics of Section 2 survive
//     unchanged — a column cell *is* σ(x, k), just stored columnar).
//
// Storage: one flat arena. Every array above lives as an offset-addressed
// region inside a single contiguous byte buffer, described by a versioned
// header + region table at the buffer's head (see snapshot.cc for the
// layout and ROADMAP.md for the format policy). The freeze builds the
// regions and packs them once; accessors read raw pointer + count members
// aimed into the buffer. Name lookups that used to hash (label names,
// interned strings, column keys) binary-search sorted offset tables in
// place. Because the arena is self-contained and position-independent,
// the image is directly serializable: snapshot_io.h writes it to disk
// with a checksummed file header and re-attaches a GraphSnapshot over
// either a read-back buffer or a zero-copy mmap — through the same
// accessor surface, so the matcher, the multiway join, the path kernels
// and the pushed filters never see the difference. Stored paths (δ, path
// labels/properties) ride along in an encoded region so a loaded image
// can reconstruct the full PPG.
//
// Invalidation: a snapshot is valid for exactly the graph state it was
// built from. GraphCatalog caches one snapshot per registered graph next
// to its GraphStats and drops both on RegisterGraph/DropGraph; the
// Matcher's per-query cache keys by graph pointer and dies with the
// query. CONSTRUCT and the builder APIs keep mutating the PPG — they
// never see a snapshot.
#ifndef GCORE_GRAPH_SNAPSHOT_H_
#define GCORE_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/value.h"
#include "graph/adjacency.h"
#include "graph/ppg.h"

namespace gcore {

// DenseEdgeIndex (adjacency.h) is the snapshot's edge numbering too:
// both number edges by ascending id, and AdjacencyEntry::edge_dense is
// built by the same rule, so entries index snapshot arrays directly.

/// The backing bytes of a GraphSnapshot's flat arena: a pointer + size
/// over storage kept alive by a type-erased owner (a heap buffer for
/// freshly frozen or read-back images, an mmap'ed file for zero-copy
/// loads — the owner's deleter unmaps). Copies share the owner.
class ArenaBuffer {
 public:
  ArenaBuffer() = default;
  ArenaBuffer(std::shared_ptr<const void> owner, const uint8_t* data,
              size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  /// Wraps a heap buffer, taking ownership.
  static ArenaBuffer Own(std::vector<uint8_t> bytes) {
    auto owner = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
    const uint8_t* data = owner->data();
    const size_t size = owner->size();
    return ArenaBuffer(std::move(owner), data, size);
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  std::shared_ptr<const void> owner_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

class GraphSnapshot {
 public:
  /// Sentinel for "label/string not interned in this snapshot".
  static constexpr uint32_t kNoLabel = ~uint32_t{0};
  static constexpr uint32_t kNoString = ~uint32_t{0};
  /// Sentinel for "edge id not a member of this snapshot".
  static constexpr DenseEdgeIndex kNoEdge = ~DenseEdgeIndex{0};

  /// Cell tag of a property column. kAbsent is σ(x, k) = ∅; the middle
  /// kinds inline a singleton set into the 64-bit slot; kOverflow points
  /// the slot at an out-of-line ValueSet (multi-valued sets, plus rare
  /// singletons the slot cannot encode, e.g. non-calendar dates).
  enum class PropKind : uint8_t {
    kAbsent = 0,
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,  // slot = interned string-pool id
    kDate,    // slot = days since epoch
    kOverflow,
  };

  /// Borrowed view over a snapshot-owned array.
  template <typename T>
  struct Span {
    const T* data = nullptr;
    size_t count = 0;
    const T* begin() const { return data; }
    const T* end() const { return data + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    T operator[](size_t i) const { return data[i]; }
  };

  /// One property key over one object class: a kind tag and a 64-bit
  /// slot per dense object index (BindingTable's column layout), heavy
  /// cells out of line. The kind/slot arrays live in the arena; the
  /// overflow ValueSets are decoded from their arena region at attach
  /// time (rare cells, kept materialized so OverflowAt stays a
  /// reference).
  class PropertyColumn {
   public:
    size_t size() const { return size_; }
    PropKind KindAt(size_t i) const {
      return static_cast<PropKind>(kinds_[i]);
    }
    bool AbsentAt(size_t i) const { return KindAt(i) == PropKind::kAbsent; }
    uint64_t SlotAt(size_t i) const { return slots_[i]; }
    bool BoolAt(size_t i) const { return slots_[i] != 0; }
    int64_t IntAt(size_t i) const { return static_cast<int64_t>(slots_[i]); }
    double DoubleAt(size_t i) const;
    int64_t DateDaysAt(size_t i) const {
      return static_cast<int64_t>(slots_[i]);
    }
    uint32_t StringIdAt(size_t i) const {
      return static_cast<uint32_t>(slots_[i]);
    }
    const ValueSet& OverflowAt(size_t i) const {
      return overflow_[slots_[i]];
    }
    /// Cells with a non-empty value set.
    size_t num_carriers() const { return num_carriers_; }

   private:
    friend class GraphSnapshot;
    const uint8_t* kinds_ = nullptr;   // arena region, size_ entries
    const uint64_t* slots_ = nullptr;  // arena region, size_ entries
    size_t size_ = 0;
    std::vector<ValueSet> overflow_;
    size_t num_carriers_ = 0;
  };

  /// Freezes the current state of `graph` into a newly packed arena.
  /// O(graph payload).
  explicit GraphSnapshot(const PathPropertyGraph& graph);

  /// Attaches a snapshot over an existing arena image (the snapshot_io.h
  /// loaders produce these). Validates the header, region table and
  /// intra-region invariants; InvalidArgument on a malformed image. The
  /// result has no bound PPG (has_graph() is false) until BindGraph —
  /// column reads, label spans, topology and the path kernels all work
  /// without one, only graph() itself needs the binding.
  static Result<std::shared_ptr<GraphSnapshot>> FromArena(ArenaBuffer arena);

  /// The packed image (snapshot_io.h serializes these bytes verbatim).
  const ArenaBuffer& arena() const { return arena_; }

  /// Rebuilds a full PathPropertyGraph — nodes, edges, stored paths,
  /// labels, properties — from the arena. Exact inverse of the freeze:
  /// freezing the reconstruction yields a byte-identical image.
  PathPropertyGraph ReconstructGraph(std::string name = "") const;

  /// Binds (shared ownership) the PPG this image describes — for loaded
  /// snapshots, typically the ReconstructGraph() result — making graph()
  /// and the PPG-reading evaluation tail (CONSTRUCT, expression eval)
  /// usable on it.
  void BindGraph(std::shared_ptr<const PathPropertyGraph> graph);

  /// True when a source PPG is attached (always, for frozen snapshots).
  bool has_graph() const { return adj_.has_graph(); }
  const PathPropertyGraph& graph() const { return adj_.graph(); }
  /// The CSR out/in topology (same dense node numbering as the rest of
  /// the snapshot); path finders keep consuming this type directly.
  const AdjacencyIndex& adjacency() const { return adj_; }

  size_t num_nodes() const { return adj_.num_nodes(); }
  size_t num_edges() const { return num_edges_; }
  /// Stored paths carried in the arena's path region (σ/λ/δ of P);
  /// available without a bound PPG.
  size_t num_paths() const { return num_paths_; }

  // --- labels ----------------------------------------------------------------

  /// Labels of nodes, edges and stored paths, interned. Ids are assigned
  /// in sorted name order, so a translated label list is sorted iff the
  /// name list was.
  size_t num_labels() const { return label_names_.size(); }
  const std::string& LabelName(uint32_t id) const { return label_names_[id]; }
  /// kNoLabel when the name occurs nowhere in the graph (binary search
  /// over the sorted name table).
  uint32_t LabelId(const std::string& name) const;

  /// Sorted interned-label ids of one object.
  Span<uint32_t> NodeLabelIds(DenseNodeIndex n) const {
    return {node_label_ids_ + node_label_offsets_[n],
            node_label_offsets_[n + 1] - node_label_offsets_[n]};
  }
  Span<uint32_t> EdgeLabelIds(DenseEdgeIndex e) const {
    return {edge_label_ids_ + edge_label_offsets_[e],
            edge_label_offsets_[e + 1] - edge_label_offsets_[e]};
  }
  bool NodeHasLabel(DenseNodeIndex n, uint32_t label) const;
  bool EdgeHasLabel(DenseEdgeIndex e, uint32_t label) const;

  /// All dense node indices carrying `label`, ascending (== ascending
  /// node id — the order ForEachNode visits); label scans iterate this
  /// span instead of the whole node range. An out-of-range id (kNoLabel,
  /// the LabelId miss sentinel, or a path-only label) yields the empty
  /// span — no node carries it.
  Span<DenseNodeIndex> NodesWithLabel(uint32_t label) const {
    if (label >= num_labels()) return {};
    return {label_nodes_ + label_node_offsets_[label],
            label_node_offsets_[label + 1] - label_node_offsets_[label]};
  }
  Span<DenseEdgeIndex> EdgesWithLabel(uint32_t label) const {
    if (label >= num_labels()) return {};
    return {label_edges_ + label_edge_offsets_[label],
            label_edge_offsets_[label + 1] - label_edge_offsets_[label]};
  }

  // --- edges -----------------------------------------------------------------

  EdgeId EdgeIdOf(DenseEdgeIndex e) const { return edge_ids_[e]; }
  /// Dense index of `id` (binary search over the ascending id array —
  /// no per-edge hash map); requires the edge to be a member.
  DenseEdgeIndex EdgeIndexOf(EdgeId id) const;
  /// Dense index of `id`, or kNoEdge when the edge is not a member.
  DenseEdgeIndex FindEdge(EdgeId id) const;
  DenseNodeIndex EdgeSrc(DenseEdgeIndex e) const { return edge_src_[e]; }
  DenseNodeIndex EdgeDst(DenseEdgeIndex e) const { return edge_dst_[e]; }

  // --- property columns ------------------------------------------------------

  /// Column of `key` over nodes/edges; null when no object carries the
  /// key (σ(x, key) = ∅ for every x). Binary search over the sorted
  /// column directory.
  const PropertyColumn* NodeColumn(const std::string& key) const;
  const PropertyColumn* EdgeColumn(const std::string& key) const;
  /// All columns, sorted by key.
  const std::vector<std::pair<std::string, PropertyColumn>>& node_columns()
      const {
    return node_columns_;
  }
  const std::vector<std::pair<std::string, PropertyColumn>>& edge_columns()
      const {
    return edge_columns_;
  }

  /// Numeric fast-path view over one edge property column, for weighted
  /// path kernels: a `COST x.w` expression over int/double singletons
  /// reduces to one kind-byte test and one slot read per edge, keyed by
  /// the dense edge index the adjacency entries already carry. Non-numeric
  /// and absent cells yield nullopt ("traversal has no weight here").
  struct EdgeWeightView {
    const PropertyColumn* col = nullptr;
    bool valid() const { return col != nullptr; }
    std::optional<double> At(DenseEdgeIndex e) const {
      if (col == nullptr) return std::nullopt;
      switch (col->KindAt(e)) {
        case PropKind::kInt:
          return static_cast<double>(col->IntAt(e));
        case PropKind::kDouble:
          return col->DoubleAt(e);
        default:
          return std::nullopt;
      }
    }
  };
  /// Weight view of edge key `key`; `valid()` is false when no edge
  /// carries the key.
  EdgeWeightView EdgeWeights(const std::string& key) const {
    return EdgeWeightView{EdgeColumn(key)};
  }

  // --- string pool -----------------------------------------------------------
  // The pool is sorted by content (ids are assigned at pack time), so
  // InternedString is a binary search over the offset table — no hash map
  // survives into the arena image.

  size_t num_strings() const { return num_strings_; }
  std::string_view StringAt(uint32_t id) const {
    return {string_blob_ + string_offsets_[id],
            static_cast<size_t>(string_offsets_[id + 1] -
                                string_offsets_[id])};
  }
  /// Pool id of `s`, or kNoString when no cell holds it (pushed
  /// string-equality filters pre-resolve their literal once and then
  /// compare 32-bit ids per row).
  uint32_t InternedString(std::string_view s) const;

  // --- cell semantics --------------------------------------------------------
  // These reproduce ValueSet/Value semantics over encoded cells so the
  // matcher's admission checks and the vectorized pushed filters never
  // materialize a ValueSet.

  /// σ(x, k).Contains(v) on cell `i` of `col`.
  bool CellContains(const PropertyColumn& col, size_t i,
                    const Value& v) const;
  /// σ(x, k) == {v}: true only for a singleton cell equal to `v`.
  bool CellEqualsSingleton(const PropertyColumn& col, size_t i,
                           const Value& v) const;
  /// Value::Compare of the cell's singleton against `v`; `ok` is set
  /// false (and 0 returned) when the cell is not a singleton.
  int CompareCellSingleton(const PropertyColumn& col, size_t i,
                           const Value& v, bool* ok) const;
  /// Materializes the cell as a ValueSet (tests and slow paths only).
  ValueSet CellValues(const PropertyColumn& col, size_t i) const;

  // Copying would duplicate the attach bookkeeping for no caller; moving
  // transfers the arena (pointer members stay valid — they aim at the
  // arena buffer, whose address the move preserves).
  GraphSnapshot(GraphSnapshot&&) = default;
  GraphSnapshot& operator=(GraphSnapshot&&) = default;
  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

 private:
  GraphSnapshot() = default;

  /// Points every accessor member into arena_ (and decodes the small
  /// materialized side tables: label names, column directory, overflow
  /// sets). `graph` is the PPG to bind (null for loaded images);
  /// `trusted` skips the structural validation for freshly packed arenas.
  Status Attach(const PathPropertyGraph* graph, bool trusted);

  ArenaBuffer arena_;
  /// Keeps a reconstructed PPG alive for loaded images (BindGraph).
  std::shared_ptr<const PathPropertyGraph> bound_graph_;

  AdjacencyIndex adj_;  // borrowed mode, over the arena

  std::vector<std::string> label_names_;  // id -> name, sorted (decoded)

  // Per-object sorted label-id lists (CSR over objects) — arena regions.
  const uint32_t* node_label_offsets_ = nullptr;
  const uint32_t* node_label_ids_ = nullptr;
  const uint32_t* edge_label_offsets_ = nullptr;
  const uint32_t* edge_label_ids_ = nullptr;

  // Per-label sorted object-index lists (CSR over labels) — arena regions.
  const uint32_t* label_node_offsets_ = nullptr;
  const DenseNodeIndex* label_nodes_ = nullptr;
  const uint32_t* label_edge_offsets_ = nullptr;
  const DenseEdgeIndex* label_edges_ = nullptr;

  const EdgeId* edge_ids_ = nullptr;  // dense -> id, ascending
  const DenseNodeIndex* edge_src_ = nullptr;
  const DenseNodeIndex* edge_dst_ = nullptr;
  size_t num_edges_ = 0;

  // Column directory: sorted by key; kind/slot pointers into the arena.
  std::vector<std::pair<std::string, PropertyColumn>> node_columns_;
  std::vector<std::pair<std::string, PropertyColumn>> edge_columns_;

  // String pool: sorted-content offset table + byte blob.
  const uint64_t* string_offsets_ = nullptr;
  const char* string_blob_ = nullptr;
  size_t num_strings_ = 0;

  // Encoded stored-path region (decoded only by ReconstructGraph).
  const uint8_t* paths_data_ = nullptr;
  size_t paths_size_ = 0;
  size_t num_paths_ = 0;
};

}  // namespace gcore

#endif  // GCORE_GRAPH_SNAPSHOT_H_
