#include "graph/graph_builder.h"

namespace gcore {

namespace {

/// Raises an atomic counter to at least `floor + 1`.
void RaiseTo(std::atomic<uint64_t>* counter, uint64_t floor) {
  uint64_t cur = counter->load();
  while (cur <= floor && !counter->compare_exchange_weak(cur, floor + 1)) {
  }
}

}  // namespace

void IdAllocator::ReserveNodeUpTo(uint64_t v) { RaiseTo(&next_node_, v); }
void IdAllocator::ReserveEdgeUpTo(uint64_t v) { RaiseTo(&next_edge_, v); }
void IdAllocator::ReservePathUpTo(uint64_t v) { RaiseTo(&next_path_, v); }

void GraphBuilder::ApplyLabelsProps(NodeId id,
                                    std::initializer_list<std::string> labels,
                                    std::initializer_list<Prop> props) {
  for (const auto& l : labels) graph_.AddLabel(id, l);
  for (const auto& p : props) {
    graph_.SetProperty(id, p.key, ValueSet(p.value));
  }
}

NodeId GraphBuilder::AddNode(std::initializer_list<std::string> labels,
                             std::initializer_list<Prop> props) {
  const NodeId id = ids_->NextNode();
  graph_.AddNode(id);
  ApplyLabelsProps(id, labels, props);
  if (collect_stats_) {
    stats_.AddNode(graph_.Labels(id), graph_.Properties(id));
  }
  return id;
}

NodeId GraphBuilder::AddNodeWithId(uint64_t raw_id,
                                   std::initializer_list<std::string> labels,
                                   std::initializer_list<Prop> props) {
  ids_->ReserveNodeUpTo(raw_id);
  const NodeId id(raw_id);
  graph_.AddNode(id);
  ApplyLabelsProps(id, labels, props);
  if (collect_stats_) {
    stats_.AddNode(graph_.Labels(id), graph_.Properties(id));
  }
  return id;
}

void GraphBuilder::AddNodePropertyValue(NodeId node, const std::string& key,
                                        Value value) {
  ValueSet values = graph_.Property(node, key);
  if (collect_stats_) {
    stats_.AddNodePropertyValue(graph_.Labels(node), key, value,
                                values.empty());
  }
  values.Insert(std::move(value));
  graph_.SetProperty(node, key, std::move(values));
}

void GraphBuilder::AddEdgePropertyValue(EdgeId edge, const std::string& key,
                                        Value value) {
  ValueSet values = graph_.Property(edge, key);
  if (collect_stats_) {
    stats_.AddEdgePropertyValue(graph_.Labels(edge), key, value,
                                values.empty());
  }
  values.Insert(std::move(value));
  graph_.SetProperty(edge, key, std::move(values));
}

EdgeId GraphBuilder::AddEdge(NodeId src, NodeId dst, const std::string& label,
                             std::initializer_list<Prop> props) {
  const EdgeId id = ids_->NextEdge();
  Status st = graph_.AddEdge(id, src, dst);
  (void)st;  // endpoints are builder-created members
  if (!label.empty()) graph_.AddLabel(id, label);
  for (const auto& p : props) {
    graph_.SetProperty(id, p.key, ValueSet(p.value));
  }
  if (collect_stats_) {
    stats_.AddEdge(graph_.Labels(id), graph_.Properties(id),
                   graph_.Labels(src), graph_.Labels(dst), src, dst);
  }
  return id;
}

EdgeId GraphBuilder::AddEdgeWithId(uint64_t raw_id, NodeId src, NodeId dst,
                                   const std::string& label,
                                   std::initializer_list<Prop> props) {
  ids_->ReserveEdgeUpTo(raw_id);
  const EdgeId id(raw_id);
  Status st = graph_.AddEdge(id, src, dst);
  (void)st;
  if (!label.empty()) graph_.AddLabel(id, label);
  for (const auto& p : props) {
    graph_.SetProperty(id, p.key, ValueSet(p.value));
  }
  if (collect_stats_) {
    stats_.AddEdge(graph_.Labels(id), graph_.Properties(id),
                   graph_.Labels(src), graph_.Labels(dst), src, dst);
  }
  return id;
}

Result<PathId> GraphBuilder::AddPath(
    const std::vector<NodeId>& nodes, const std::vector<EdgeId>& edges,
    std::initializer_list<std::string> labels,
    std::initializer_list<Prop> props) {
  return AddPathWithId(ids_->NextPath().value(), nodes, edges, labels, props);
}

Result<PathId> GraphBuilder::AddPathWithId(
    uint64_t raw_id, const std::vector<NodeId>& nodes,
    const std::vector<EdgeId>& edges,
    std::initializer_list<std::string> labels,
    std::initializer_list<Prop> props) {
  ids_->ReservePathUpTo(raw_id);
  const PathId id(raw_id);
  PathBody body;
  body.nodes = nodes;
  body.edges = edges;
  GCORE_RETURN_NOT_OK(graph_.AddPath(id, std::move(body)));
  for (const auto& l : labels) graph_.AddLabel(id, l);
  for (const auto& p : props) {
    graph_.SetProperty(id, p.key, ValueSet(p.value));
  }
  if (collect_stats_) stats_.AddPath();
  return id;
}

}  // namespace gcore
