// Graph-level set operations: Appendix A.5 of the paper.
//
// UNION / INTERSECT / MINUS on whole PPGs are defined over object
// *identities*. Two graphs are "consistent" when every shared edge has the
// same ρ and every shared path the same δ; union and intersection of
// inconsistent graphs are defined to be the empty PPG. Difference keeps
// only edges whose endpoints survive and paths whose full bodies survive
// (no dangling structure).
#ifndef GCORE_GRAPH_GRAPH_OPS_H_
#define GCORE_GRAPH_GRAPH_OPS_H_

#include "graph/ppg.h"

namespace gcore {

/// True when shared edges/paths agree on ρ/δ (Appendix A.5).
bool Consistent(const PathPropertyGraph& g1, const PathPropertyGraph& g2);

/// G1 ∪ G2. Labels and property value sets of shared objects are unioned.
/// Returns the empty PPG if the graphs are inconsistent.
PathPropertyGraph GraphUnion(const PathPropertyGraph& g1,
                             const PathPropertyGraph& g2);

/// G1 ∩ G2. Shared objects keep the intersection of labels and per-key
/// value sets. Returns the empty PPG if the graphs are inconsistent.
PathPropertyGraph GraphIntersect(const PathPropertyGraph& g1,
                                 const PathPropertyGraph& g2);

/// G1 ∖ G2. N = N1∖N2; E keeps edges of E1∖E2 with both endpoints in N;
/// P keeps paths of P1∖P2 whose nodes and edges all survive. λ/σ restricted
/// from G1.
PathPropertyGraph GraphMinus(const PathPropertyGraph& g1,
                             const PathPropertyGraph& g2);

/// Structural + content equality (same members, same ρ/δ/λ/σ). Names are
/// ignored.
bool GraphEquals(const PathPropertyGraph& g1, const PathPropertyGraph& g2);

}  // namespace gcore

#endif  // GCORE_GRAPH_GRAPH_OPS_H_
