#include "common/value.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gcore {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOLEAN";
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

namespace {

/// Rank collapsing kInt/kDouble into one numeric class so they compare by
/// value.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
    case ValueType::kDate:
      return 4;
  }
  return 5;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const int ra = TypeRank(type());
  const int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return Cmp(AsBool(), other.AsBool());
    case ValueType::kInt:
      if (other.is_int()) return Cmp(AsInt(), other.AsInt());
      return Cmp(NumericAsDouble(), other.NumericAsDouble());
    case ValueType::kDouble:
      return Cmp(NumericAsDouble(), other.NumericAsDouble());
    case ValueType::kString:
      return Cmp(AsString(), other.AsString());
    case ValueType::kDate: {
      // Chronological order via epoch days, but that projection is not
      // injective over non-calendar literals (2020-01-40 lands on the
      // same day count as 2020-02-09), so a tie falls back to the
      // field-wise order — distinct Date literals must never compare
      // equal, or sets would merge them. Valid dates are untouched: for
      // them, equal day counts imply identical fields.
      const int c =
          Cmp(AsDate().ToEpochDays(), other.AsDate().ToEpochDays());
      if (c != 0) return c;
      const Date& a = AsDate();
      const Date& b = other.AsDate();
      if (!(a == b)) return a < b ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return std::hash<bool>{}(AsBool()) ^ 0x1;
    case ValueType::kInt:
      // Hash ints via double so Int(1) and Double(1.0) (which compare
      // equal) hash identically.
      return std::hash<double>{}(static_cast<double>(AsInt())) ^ 0x2;
    case ValueType::kDouble:
      return std::hash<double>{}(AsDouble()) ^ 0x2;
    case ValueType::kString:
      return std::hash<std::string>{}(AsString()) ^ 0x3;
    case ValueType::kDate:
      return std::hash<int64_t>{}(AsDate().ToEpochDays()) ^ 0x4;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      const double d = AsDouble();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", d);
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case ValueType::kString:
      return AsString();
    case ValueType::kDate:
      return AsDate().ToString();
  }
  return "?";
}

ValueSet::ValueSet(std::vector<Value> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

void ValueSet::Insert(Value v) {
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it != values_.end() && *it == v) return;
  values_.insert(it, std::move(v));
}

bool ValueSet::Contains(const Value& v) const {
  return std::binary_search(values_.begin(), values_.end(), v);
}

bool ValueSet::SubsetOf(const ValueSet& other) const {
  return std::includes(other.values_.begin(), other.values_.end(),
                       values_.begin(), values_.end());
}

size_t ValueSet::Hash() const {
  size_t h = 0x51ed270b;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string ValueSet::ToString() const {
  if (empty()) return "{}";
  if (is_singleton()) return single().ToString();
  std::string out = "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "}";
  return out;
}

ValueSet Union(const ValueSet& a, const ValueSet& b) {
  std::vector<Value> merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  ValueSet out;
  for (Value& v : merged) out.Insert(std::move(v));
  return out;
}

ValueSet Intersect(const ValueSet& a, const ValueSet& b) {
  std::vector<Value> merged;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(merged));
  ValueSet out;
  for (Value& v : merged) out.Insert(std::move(v));
  return out;
}

}  // namespace gcore
