// Calendar date literal type.
//
// The PPG model's literal domain V includes dates (Section 2); the paper's
// toy data uses values such as `1/12/2014` (day/month/year) for the `since`
// property. We support that form plus ISO `2014-12-01`.
#ifndef GCORE_COMMON_DATE_H_
#define GCORE_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace gcore {

/// A proleptic-Gregorian calendar date. Ordered chronologically.
struct Date {
  int32_t year = 1970;
  uint8_t month = 1;  // 1..12
  uint8_t day = 1;    // 1..31

  /// Days since 1970-01-01 (may be negative). Used for ordering and
  /// arithmetic.
  int64_t ToEpochDays() const;
  static Date FromEpochDays(int64_t days);

  /// Parses either `d/m/yyyy` (paper style) or `yyyy-mm-dd` (ISO).
  static Result<Date> Parse(const std::string& text);

  /// ISO `yyyy-mm-dd`.
  std::string ToString() const;

  /// True when (year, month, day) denotes a real calendar date.
  bool IsValid() const;

  friend bool operator==(const Date& a, const Date& b) {
    return a.year == b.year && a.month == b.month && a.day == b.day;
  }
  friend bool operator<(const Date& a, const Date& b) {
    if (a.year != b.year) return a.year < b.year;
    if (a.month != b.month) return a.month < b.month;
    return a.day < b.day;
  }
};

/// Number of days in `month` of `year`, accounting for leap years.
int DaysInMonth(int32_t year, int month);

/// Gregorian leap-year predicate.
bool IsLeapYear(int32_t year);

}  // namespace gcore

#endif  // GCORE_COMMON_DATE_H_
