// Status: error propagation without exceptions, in the Arrow/RocksDB idiom.
//
// Every fallible public API in gcore-cpp returns either a Status or a
// Result<T> (see result.h). Exceptions are not used across module
// boundaries.
#ifndef GCORE_COMMON_STATUS_H_
#define GCORE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace gcore {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  /// Lexical or syntactic error in query text.
  kParseError,
  /// Query is syntactically valid but violates a semantic rule
  /// (e.g. unbound construct endpoint, OPTIONAL shared-variable restriction).
  kBindError,
  /// Type mismatch during expression evaluation.
  kTypeError,
  /// Runtime evaluation failure (e.g. non-positive PATH cost, Appendix A.4).
  kEvaluationError,
  /// Lookup of a named graph, view, path view or table failed.
  kNotFound,
  /// Attempt to register a name that already exists in a catalog.
  kAlreadyExists,
  /// Argument outside the accepted domain.
  kInvalidArgument,
  /// Feature recognized but deliberately unsupported (paper: ALL with a
  /// used path variable is rejected as intractable).
  kUnsupported,
};

/// Human-readable name of a StatusCode (e.g. "ParseError").
const char* StatusCodeToString(StatusCode code);

/// An operation outcome: OK (cheap, no allocation) or an error carrying a
/// code and message. Movable and copyable; copies share the error state.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status ParseError(std::string msg);
  static Status BindError(std::string msg);
  static Status TypeError(std::string msg);
  static Status EvaluationError(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status InvalidArgument(std::string msg);
  static Status Unsupported(std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK.
  const std::string& message() const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsEvaluationError() const {
    return code() == StatusCode::kEvaluationError;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

}  // namespace gcore

/// Propagates a non-OK Status to the caller.
#define GCORE_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::gcore::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#endif  // GCORE_COMMON_STATUS_H_
