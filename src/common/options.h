// The engine's evaluation knobs, extracted into one value type.
//
// One EngineOptions instance travels the whole pipeline: QueryEngine
// stores its defaults, QuerySession freezes a copy at session creation
// (so concurrent sessions can never race knob mutation), MatcherContext
// and PlannerOptions inherit the struct (the fields below *are* their
// fields — no copy-by-hand forwarding), and Fingerprint() keys the plan
// cache so sessions with different knobs never share a cached plan.
#ifndef GCORE_COMMON_OPTIONS_H_
#define GCORE_COMMON_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace gcore {

struct EngineOptions {
  /// Evaluate through the logical-plan pipeline (default). Off = the
  /// pre-planner recursive tree-walk, kept for differential tests and as
  /// the executable spec of Appendix A.2.
  bool use_planner = true;
  /// Optimizer rule: selection pushdown of single-variable WHERE
  /// conjuncts into chain evaluation.
  bool enable_pushdown = true;
  /// Optimizer rule: join enumeration (DP over connected subsets, bushy
  /// trees). Off keeps the seed's source-order left-deep chain.
  bool reorder_joins = true;
  /// Optimizer rule: cyclic patterns → MultiwayExpand worst-case-optimal
  /// intersection when the AGM/max-degree bound wins. Requires
  /// reorder_joins and usable statistics.
  bool enable_multiway = true;
  /// Optimizer rule: estimated-cost-driven HashJoin build-side swap.
  bool choose_build_side = true;
  /// Per-column statistics in the cardinality estimator; off falls back
  /// to the seed's constant selectivities (the ablation mode).
  bool use_column_stats = true;
  /// Vectorized expression kernels (eval/expr_vec.h) for generic WHERE
  /// conjuncts, residual filters and computed projections; off keeps the
  /// row-at-a-time ExprEvaluator everywhere (the ablation/spec mode).
  bool enable_vectorized_exprs = true;
  /// Morsel-parallel execution degree: 0 = one worker per hardware
  /// thread, 1 = serial (the differential-test mode).
  size_t parallelism = 0;
  /// Rows per executor morsel; 0 = the ExecContext default.
  size_t morsel_size = 0;

  /// Stable fingerprint of every knob, a component of the plan-cache key:
  /// two option sets fingerprint equal iff a plan built under one is the
  /// plan the other would build (and annotate) too.
  uint64_t Fingerprint() const {
    uint64_t f = 0;
    f |= static_cast<uint64_t>(use_planner) << 0;
    f |= static_cast<uint64_t>(enable_pushdown) << 1;
    f |= static_cast<uint64_t>(reorder_joins) << 2;
    f |= static_cast<uint64_t>(enable_multiway) << 3;
    f |= static_cast<uint64_t>(choose_build_side) << 4;
    f |= static_cast<uint64_t>(use_column_stats) << 5;
    f |= static_cast<uint64_t>(enable_vectorized_exprs) << 6;
    // Mix the two size knobs in with distinct odd multipliers (the knob
    // space is tiny; this only has to separate, not avalanche).
    f ^= static_cast<uint64_t>(parallelism) * 0x9e3779b97f4a7c15ull;
    f ^= static_cast<uint64_t>(morsel_size) * 0xc2b2ae3d27d4eb4full;
    return f;
  }

  friend bool operator==(const EngineOptions& a, const EngineOptions& b) {
    return a.use_planner == b.use_planner &&
           a.enable_pushdown == b.enable_pushdown &&
           a.reorder_joins == b.reorder_joins &&
           a.enable_multiway == b.enable_multiway &&
           a.choose_build_side == b.choose_build_side &&
           a.use_column_stats == b.use_column_stats &&
           a.enable_vectorized_exprs == b.enable_vectorized_exprs &&
           a.parallelism == b.parallelism && a.morsel_size == b.morsel_size;
  }
  friend bool operator!=(const EngineOptions& a, const EngineOptions& b) {
    return !(a == b);
  }
};

}  // namespace gcore

#endif  // GCORE_COMMON_OPTIONS_H_
