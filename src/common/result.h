// Result<T>: value-or-Status, the companion of status.h.
#ifndef GCORE_COMMON_RESULT_H_
#define GCORE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gcore {

/// Holds either a T or a non-OK Status. Construction from a value yields an
/// OK result; construction from a Status requires the status to be an error.
template <typename T>
class Result {
 public:
  /// Implicit from value (OK).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gcore

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status. Usage: GCORE_ASSIGN_OR_RETURN(auto x, ComputeX());
#define GCORE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define GCORE_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define GCORE_ASSIGN_OR_RETURN_NAME(a, b) GCORE_ASSIGN_OR_RETURN_CONCAT(a, b)

#define GCORE_ASSIGN_OR_RETURN(lhs, expr) \
  GCORE_ASSIGN_OR_RETURN_IMPL(            \
      GCORE_ASSIGN_OR_RETURN_NAME(_result_, __COUNTER__), lhs, expr)

#endif  // GCORE_COMMON_RESULT_H_
