#include "common/status.h"

namespace gcore {

namespace {
const std::string kEmpty;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kEvaluationError:
      return "EvaluationError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnsupported:
      return "Unsupported";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_shared<const State>(State{code, std::move(message)})) {}

Status Status::ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
Status Status::BindError(std::string msg) {
  return Status(StatusCode::kBindError, std::move(msg));
}
Status Status::TypeError(std::string msg) {
  return Status(StatusCode::kTypeError, std::move(msg));
}
Status Status::EvaluationError(std::string msg) {
  return Status(StatusCode::kEvaluationError, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::Unsupported(std::string msg) {
  return Status(StatusCode::kUnsupported, std::move(msg));
}

const std::string& Status::message() const {
  return ok() ? kEmpty : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->message;
  return out;
}

}  // namespace gcore
