#include "common/date.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace gcore {

bool IsLeapYear(int32_t year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int32_t year, int month) {
  static constexpr std::array<int, 13> kDays = {0,  31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[static_cast<size_t>(month)];
}

bool Date::IsValid() const {
  return month >= 1 && month <= 12 && day >= 1 &&
         day <= DaysInMonth(year, month);
}

int64_t Date::ToEpochDays() const {
  // Howard Hinnant's days_from_civil algorithm.
  int32_t y = year;
  const int32_t m = month;
  const int32_t d = day;
  y -= m <= 2;
  const int32_t era = (y >= 0 ? y : y - 399) / 400;
  const uint32_t yoe = static_cast<uint32_t>(y - era * 400);
  const uint32_t doy =
      static_cast<uint32_t>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const uint32_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int64_t>(doe) - 719468LL;
}

Date Date::FromEpochDays(int64_t days) {
  // Howard Hinnant's civil_from_days algorithm.
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const uint64_t doe = static_cast<uint64_t>(days - era * 146097);
  const uint64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const uint64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const uint64_t mp = (5 * doy + 2) / 153;
  const uint64_t d = doy - (153 * mp + 2) / 5 + 1;
  const uint64_t m = mp + (mp < 10 ? 3 : -9);
  Date out;
  out.year = static_cast<int32_t>(y + (m <= 2));
  out.month = static_cast<uint8_t>(m);
  out.day = static_cast<uint8_t>(d);
  return out;
}

namespace {

bool ParseInt(std::string_view text, int32_t* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

Result<Date> Date::Parse(const std::string& text) {
  // Try ISO yyyy-mm-dd first, then d/m/yyyy.
  char sep = '\0';
  if (text.find('-') != std::string::npos) sep = '-';
  else if (text.find('/') != std::string::npos) sep = '/';
  if (sep == '\0') {
    return Status::InvalidArgument("not a date literal: '" + text + "'");
  }
  const size_t p1 = text.find(sep);
  const size_t p2 = text.find(sep, p1 + 1);
  if (p2 == std::string::npos || text.find(sep, p2 + 1) != std::string::npos) {
    return Status::InvalidArgument("malformed date literal: '" + text + "'");
  }
  int32_t a, b, c;
  if (!ParseInt(std::string_view(text).substr(0, p1), &a) ||
      !ParseInt(std::string_view(text).substr(p1 + 1, p2 - p1 - 1), &b) ||
      !ParseInt(std::string_view(text).substr(p2 + 1), &c)) {
    return Status::InvalidArgument("malformed date literal: '" + text + "'");
  }
  Date date;
  if (sep == '-') {
    date.year = a;
    date.month = static_cast<uint8_t>(b);
    date.day = static_cast<uint8_t>(c);
  } else {
    date.day = static_cast<uint8_t>(a);
    date.month = static_cast<uint8_t>(b);
    date.year = c;
  }
  if (!date.IsValid()) {
    return Status::InvalidArgument("invalid calendar date: '" + text + "'");
  }
  return date;
}

std::string Date::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", year, month, day);
  return buf;
}

}  // namespace gcore
