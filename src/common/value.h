// The literal domain V of the PPG model, and finite sets over it (FSET(V)).
//
// Section 2 (Definition 2.1) makes the property assignment σ a map into
// FSET(V): a property holds a *set* of literals, possibly empty (absent)
// and possibly with more than one element ("Frank works for both MIT and
// CWI"). The comparison semantics of pp. 8-9 — `=` between a singleton and
// a larger set is FALSE, `IN` tests membership, `SUBSET` tests containment
// — live here.
#ifndef GCORE_COMMON_VALUE_H_
#define GCORE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/date.h"
#include "common/result.h"

namespace gcore {

/// Type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kDate,
};

const char* ValueTypeToString(ValueType type);

/// A single literal from V: null, boolean, 64-bit integer, double, string
/// or date. Values are immutable, ordered (by type rank then content, with
/// int/double compared numerically) and hashable.
class Value {
 public:
  /// Null literal.
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(v)); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }
  static Value OfDate(Date v) { return Value(Data(v)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_date() const { return type() == ValueType::kDate; }
  /// True for kInt or kDouble.
  bool is_numeric() const { return is_int() || is_double(); }

  /// Typed accessors; must match type().
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const Date& AsDate() const { return std::get<Date>(data_); }

  /// Numeric content as double; requires is_numeric().
  double NumericAsDouble() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Three-way comparison defining a total order over V: type rank first
  /// (null < bool < numeric < string < date), content second. Int and
  /// double compare numerically within the shared "numeric" rank.
  int Compare(const Value& other) const;

  /// Equality under the total order (so Int(1) == Double(1.0)).
  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

  size_t Hash() const;

  /// Display form: strings unquoted ("Acme"), booleans TRUE/FALSE, dates
  /// ISO, doubles shortest round-trip.
  std::string ToString() const;

 private:
  using Data =
      std::variant<std::monostate, bool, int64_t, double, std::string, Date>;
  explicit Value(Data data) : data_(std::move(data)) {}
  Data data_;
};

/// A finite set of literals: an element of FSET(V). Kept sorted and
/// deduplicated. The empty set denotes an absent property (Section 3,
/// "In case of an absent property, its evaluation results in the empty
/// set").
class ValueSet {
 public:
  ValueSet() = default;
  /// Singleton set.
  explicit ValueSet(Value v) { values_.push_back(std::move(v)); }
  /// From arbitrary values; sorts and deduplicates.
  explicit ValueSet(std::vector<Value> values);

  static ValueSet Empty() { return ValueSet(); }

  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }
  bool is_singleton() const { return values_.size() == 1; }
  /// The sole element; requires is_singleton().
  const Value& single() const { return values_.front(); }

  const std::vector<Value>& values() const { return values_; }
  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  /// Inserts preserving sortedness/uniqueness.
  void Insert(Value v);

  bool Contains(const Value& v) const;
  /// True when every element of this set is in `other`.
  bool SubsetOf(const ValueSet& other) const;

  /// Set equality.
  friend bool operator==(const ValueSet& a, const ValueSet& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const ValueSet& a, const ValueSet& b) {
    return !(a == b);
  }
  friend bool operator<(const ValueSet& a, const ValueSet& b) {
    return a.values_ < b.values_;
  }

  size_t Hash() const;

  /// Singleton prints bare ("MIT"); otherwise {a, b} with sorted elements
  /// — matching the paper's table rendering on p.8.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Set union.
ValueSet Union(const ValueSet& a, const ValueSet& b);
/// Set intersection.
ValueSet Intersect(const ValueSet& a, const ValueSet& b);

}  // namespace gcore

namespace std {
template <>
struct hash<gcore::Value> {
  size_t operator()(const gcore::Value& v) const { return v.Hash(); }
};
template <>
struct hash<gcore::ValueSet> {
  size_t operator()(const gcore::ValueSet& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // GCORE_COMMON_VALUE_H_
