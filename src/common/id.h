// Strongly typed object identifiers for the Path Property Graph model.
//
// Definition 2.1 requires N, E and P to be pairwise disjoint identifier
// sets; distinct C++ types enforce that statically.
#ifndef GCORE_COMMON_ID_H_
#define GCORE_COMMON_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace gcore {

namespace internal {

/// CRTP-free tagged id. Tag makes NodeId/EdgeId/PathId distinct types.
template <typename Tag>
class ObjectId {
 public:
  static constexpr uint64_t kInvalidValue = ~uint64_t{0};

  constexpr ObjectId() : value_(kInvalidValue) {}
  constexpr explicit ObjectId(uint64_t value) : value_(value) {}

  constexpr uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  friend constexpr bool operator==(ObjectId a, ObjectId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(ObjectId a, ObjectId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(ObjectId a, ObjectId b) {
    return a.value_ < b.value_;
  }

 private:
  uint64_t value_;
};

struct NodeTag {};
struct EdgeTag {};
struct PathTag {};

}  // namespace internal

/// Identifier of a node (element of N).
using NodeId = internal::ObjectId<internal::NodeTag>;
/// Identifier of an edge (element of E).
using EdgeId = internal::ObjectId<internal::EdgeTag>;
/// Identifier of a stored path (element of P).
using PathId = internal::ObjectId<internal::PathTag>;

inline std::string ToString(NodeId id) {
  return "#n" + std::to_string(id.value());
}
inline std::string ToString(EdgeId id) {
  return "#e" + std::to_string(id.value());
}
inline std::string ToString(PathId id) {
  return "#p" + std::to_string(id.value());
}

}  // namespace gcore

namespace std {
template <typename Tag>
struct hash<gcore::internal::ObjectId<Tag>> {
  size_t operator()(gcore::internal::ObjectId<Tag> id) const {
    return std::hash<uint64_t>{}(id.value());
  }
};
}  // namespace std

#endif  // GCORE_COMMON_ID_H_
