// Regular path expressions (RPQs): Appendix A.1.
//
//   r ::= _ | ℓ | ℓ⁻ | !ℓ | (r + r) | (r r) | (r)*
//
// ℓ / ℓ⁻ test an edge label along/against edge direction, !ℓ tests the
// label of the node at the current position (a zero-width assertion), `_`
// is the any-edge wildcard. We additionally support the usual derived
// operators + (one-or-more) and ? (optional), and `~name` references to
// PATH-clause views (Appendix A.4), which traverse a precomputed weighted
// binary relation.
#ifndef GCORE_PATHS_RPQ_H_
#define GCORE_PATHS_RPQ_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace gcore {

/// Node of a regular path expression tree.
class RpqExpr {
 public:
  enum class Kind {
    kAnyEdge,           // _
    kEdgeLabel,         // ℓ     (traverse an edge forward)
    kInverseEdgeLabel,  // ℓ⁻    (traverse an edge backward)
    kNodeLabel,         // !ℓ    (assert label on current node; zero-width)
    kViewRef,           // ~name (traverse one segment of a PATH view)
    kConcat,            // r1 r2 ... rn
    kAlt,               // r1 + r2 + ... + rn
    kStar,              // r*
    kPlus,              // r+  == r r*
    kOptional,          // r?  == r + ε
  };

  Kind kind() const { return kind_; }
  /// Label or view name for the atom kinds.
  const std::string& label() const { return label_; }
  const std::vector<std::unique_ptr<RpqExpr>>& children() const {
    return children_;
  }

  static std::unique_ptr<RpqExpr> AnyEdge();
  static std::unique_ptr<RpqExpr> EdgeLabel(std::string label);
  static std::unique_ptr<RpqExpr> InverseEdgeLabel(std::string label);
  static std::unique_ptr<RpqExpr> NodeLabel(std::string label);
  static std::unique_ptr<RpqExpr> ViewRef(std::string name);
  static std::unique_ptr<RpqExpr> Concat(
      std::vector<std::unique_ptr<RpqExpr>> children);
  static std::unique_ptr<RpqExpr> Alt(
      std::vector<std::unique_ptr<RpqExpr>> children);
  static std::unique_ptr<RpqExpr> Star(std::unique_ptr<RpqExpr> child);
  static std::unique_ptr<RpqExpr> Plus(std::unique_ptr<RpqExpr> child);
  static std::unique_ptr<RpqExpr> Optional(std::unique_ptr<RpqExpr> child);

  std::unique_ptr<RpqExpr> Clone() const;

  /// True when the expression (or a subexpression) references a PATH view.
  bool ReferencesView() const;
  /// Collects all view names referenced, in first-occurrence order.
  void CollectViewRefs(std::vector<std::string>* out) const;

  /// Surface rendering, e.g. ":knows*" or "(~wKnows)*".
  std::string ToString() const;

 protected:
  RpqExpr(Kind kind, std::string label,
          std::vector<std::unique_ptr<RpqExpr>> children)
      : kind_(kind), label_(std::move(label)), children_(std::move(children)) {}

 private:
  Kind kind_;
  std::string label_;
  std::vector<std::unique_ptr<RpqExpr>> children_;
};

/// True when the expression is the weighted-view closure shape `~view*`
/// (Star over a single ViewRef, looking through single-child Concat
/// wrappers). That shape degenerates the graph × NFA product to plain
/// SSSP over the view's segment graph — the matcher routes it to
/// ViewStarSssp (delta_stepping.h) instead of the product Dijkstra. Sets
/// *view_name to the referenced view on success.
bool IsViewStar(const RpqExpr& expr, std::string* view_name);

}  // namespace gcore

#endif  // GCORE_PATHS_RPQ_H_
