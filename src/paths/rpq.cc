#include "paths/rpq.h"

namespace gcore {

namespace {
using Children = std::vector<std::unique_ptr<RpqExpr>>;

std::unique_ptr<RpqExpr> Make(RpqExpr::Kind kind, std::string label,
                              Children children) {
  // RpqExpr's constructor is private; this friend-free helper uses a local
  // subclass trick instead of exposing the constructor broadly.
  struct Ctor : RpqExpr {
    Ctor(Kind k, std::string l, Children c)
        : RpqExpr(k, std::move(l), std::move(c)) {}
  };
  return std::make_unique<Ctor>(kind, std::move(label), std::move(children));
}
}  // namespace

std::unique_ptr<RpqExpr> RpqExpr::AnyEdge() {
  return Make(Kind::kAnyEdge, "", {});
}
std::unique_ptr<RpqExpr> RpqExpr::EdgeLabel(std::string label) {
  return Make(Kind::kEdgeLabel, std::move(label), {});
}
std::unique_ptr<RpqExpr> RpqExpr::InverseEdgeLabel(std::string label) {
  return Make(Kind::kInverseEdgeLabel, std::move(label), {});
}
std::unique_ptr<RpqExpr> RpqExpr::NodeLabel(std::string label) {
  return Make(Kind::kNodeLabel, std::move(label), {});
}
std::unique_ptr<RpqExpr> RpqExpr::ViewRef(std::string name) {
  return Make(Kind::kViewRef, std::move(name), {});
}
std::unique_ptr<RpqExpr> RpqExpr::Concat(Children children) {
  return Make(Kind::kConcat, "", std::move(children));
}
std::unique_ptr<RpqExpr> RpqExpr::Alt(Children children) {
  return Make(Kind::kAlt, "", std::move(children));
}
std::unique_ptr<RpqExpr> RpqExpr::Star(std::unique_ptr<RpqExpr> child) {
  Children c;
  c.push_back(std::move(child));
  return Make(Kind::kStar, "", std::move(c));
}
std::unique_ptr<RpqExpr> RpqExpr::Plus(std::unique_ptr<RpqExpr> child) {
  Children c;
  c.push_back(std::move(child));
  return Make(Kind::kPlus, "", std::move(c));
}
std::unique_ptr<RpqExpr> RpqExpr::Optional(std::unique_ptr<RpqExpr> child) {
  Children c;
  c.push_back(std::move(child));
  return Make(Kind::kOptional, "", std::move(c));
}

std::unique_ptr<RpqExpr> RpqExpr::Clone() const {
  Children children;
  children.reserve(children_.size());
  for (const auto& c : children_) children.push_back(c->Clone());
  return Make(kind_, label_, std::move(children));
}

bool RpqExpr::ReferencesView() const {
  if (kind_ == Kind::kViewRef) return true;
  for (const auto& c : children_) {
    if (c->ReferencesView()) return true;
  }
  return false;
}

void RpqExpr::CollectViewRefs(std::vector<std::string>* out) const {
  if (kind_ == Kind::kViewRef) {
    for (const auto& existing : *out) {
      if (existing == label_) return;
    }
    out->push_back(label_);
    return;
  }
  for (const auto& c : children_) c->CollectViewRefs(out);
}

std::string RpqExpr::ToString() const {
  switch (kind_) {
    case Kind::kAnyEdge:
      return "_";
    case Kind::kEdgeLabel:
      return ":" + label_;
    case Kind::kInverseEdgeLabel:
      return ":" + label_ + "^";
    case Kind::kNodeLabel:
      return "!" + label_;
    case Kind::kViewRef:
      return "~" + label_;
    case Kind::kConcat: {
      std::string out;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " ";
        out += children_[i]->ToString();
      }
      return out;
    }
    case Kind::kAlt: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += "|";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kStar:
      return "(" + children_[0]->ToString() + ")*";
    case Kind::kPlus:
      return "(" + children_[0]->ToString() + ")+";
    case Kind::kOptional:
      return "(" + children_[0]->ToString() + ")?";
  }
  return "?";
}


bool IsViewStar(const RpqExpr& expr, std::string* view_name) {
  const RpqExpr* e = &expr;
  auto unwrap = [](const RpqExpr* x) {
    while (x->kind() == RpqExpr::Kind::kConcat && x->children().size() == 1) {
      x = x->children()[0].get();
    }
    return x;
  };
  e = unwrap(e);
  if (e->kind() != RpqExpr::Kind::kStar) return false;
  e = unwrap(e->children()[0].get());
  if (e->kind() != RpqExpr::Kind::kViewRef) return false;
  if (view_name != nullptr) *view_name = e->label();
  return true;
}

}  // namespace gcore
