// Thompson construction of a nondeterministic finite automaton from a
// regular path expression.
//
// The automaton runs over alternating node/edge positions of a graph walk:
// edge transitions consume one graph edge (with direction and label
// constraints), node-test transitions are zero-width assertions on the
// current node, view-ref transitions consume one whole segment of a PATH
// view, and epsilon transitions consume nothing. The product of graph ×
// NFA is what makes shortest-path-conforming-to-r polynomial (Section 4).
#ifndef GCORE_PATHS_NFA_H_
#define GCORE_PATHS_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "paths/rpq.h"

namespace gcore {

/// Index of an NFA state.
using NfaStateId = uint32_t;

/// One NFA transition.
struct NfaTransition {
  enum class Type : uint8_t {
    kEpsilon,       // consumes nothing
    kAnyEdge,       // any edge, either direction
    kEdgeForward,   // edge with `label`, along its direction
    kEdgeBackward,  // edge with `label`, against its direction (ℓ⁻)
    kNodeTest,      // current node must carry `label`; zero-width
    kViewRef,       // one segment of PATH view `label`
  };

  Type type;
  NfaStateId target;
  std::string label;
};

/// An NFA with a single start and single accept state.
class Nfa {
 public:
  /// Compiles `expr` via Thompson's construction.
  static Nfa Compile(const RpqExpr& expr);

  NfaStateId start() const { return start_; }
  NfaStateId accept() const { return accept_; }
  size_t num_states() const { return transitions_.size(); }

  const std::vector<NfaTransition>& TransitionsFrom(NfaStateId s) const {
    return transitions_[s];
  }

  /// True when the empty walk (a single node, zero edges) can be accepted
  /// starting from `s` using only epsilon transitions (node tests excluded
  /// — they depend on the node).
  bool AcceptsFromViaEpsilon(NfaStateId s) const;

  /// States reachable from `s` via epsilon transitions only (includes s).
  std::vector<NfaStateId> EpsilonClosure(NfaStateId s) const;

  /// A reversed copy: transition direction flipped, start/accept swapped.
  /// Edge transitions keep their labels but their graph-direction meaning
  /// flips (used by the ALL-paths backward sweep).
  Nfa Reversed() const;

  std::string ToString() const;

 private:
  NfaStateId AddState();
  void AddTransition(NfaStateId from, NfaTransition t);
  /// Builds states for `expr`; returns (entry, exit).
  std::pair<NfaStateId, NfaStateId> Build(const RpqExpr& expr);

  NfaStateId start_ = 0;
  NfaStateId accept_ = 0;
  std::vector<std::vector<NfaTransition>> transitions_;
};

}  // namespace gcore

#endif  // GCORE_PATHS_NFA_H_
