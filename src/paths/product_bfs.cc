#include "paths/product_bfs.h"

#include <deque>

namespace gcore {

Status ProductReachability(const PathSearchContext& ctx, NodeId src,
                           std::vector<bool>* marks) {
  if (ctx.adj == nullptr || ctx.nfa == nullptr) {
    return Status::InvalidArgument("path search context is incomplete");
  }
  if (!ctx.adj->Contains(src)) {
    return Status::InvalidArgument("source node is not in the graph");
  }
  const size_t num_states = ctx.nfa->num_states();
  marks->assign(ctx.adj->num_nodes() * num_states, false);

  auto mark_index = [&](DenseNodeIndex n, NfaStateId q) {
    return static_cast<size_t>(n) * num_states + q;
  };

  std::deque<std::pair<DenseNodeIndex, NfaStateId>> queue;
  auto push = [&](DenseNodeIndex n, NfaStateId q) {
    const size_t idx = mark_index(n, q);
    if ((*marks)[idx]) return;
    (*marks)[idx] = true;
    queue.emplace_back(n, q);
  };

  push(ctx.adj->IndexOf(src), ctx.nfa->start());

  const PathPropertyGraph& graph = ctx.adj->graph();
  while (!queue.empty()) {
    auto [n, q] = queue.front();
    queue.pop_front();
    const NodeId here = ctx.adj->IdOf(n);
    const LabelSet& node_labels = graph.Labels(here);

    for (const NfaTransition& t : ctx.nfa->TransitionsFrom(q)) {
      switch (t.type) {
        case NfaTransition::Type::kEpsilon:
          push(n, t.target);
          break;
        case NfaTransition::Type::kNodeTest:
          if (node_labels.Contains(t.label)) push(n, t.target);
          break;
        case NfaTransition::Type::kAnyEdge:
        case NfaTransition::Type::kEdgeForward:
        case NfaTransition::Type::kEdgeBackward: {
          auto try_entries = [&](const AdjacencyEntry* begin,
                                 const AdjacencyEntry* end) {
            for (const AdjacencyEntry* e = begin; e != end; ++e) {
              if (t.type != NfaTransition::Type::kAnyEdge &&
                  !graph.Labels(e->edge).Contains(t.label)) {
                continue;
              }
              push(e->neighbor, t.target);
            }
          };
          if (t.type != NfaTransition::Type::kEdgeBackward) {
            auto [b, e] = ctx.adj->Out(n);
            try_entries(b, e);
          }
          if (t.type != NfaTransition::Type::kEdgeForward) {
            auto [b, e] = ctx.adj->In(n);
            try_entries(b, e);
          }
          break;
        }
        case NfaTransition::Type::kViewRef: {
          if (ctx.views == nullptr) {
            return Status::EvaluationError(
                "regex references PATH view '~" + t.label +
                "' but no views are in scope");
          }
          auto rel = ctx.views->Lookup(t.label);
          if (!rel.ok()) return rel.status();
          for (const PathViewSegment& seg : (*rel)->SegmentsFrom(here)) {
            if (!ctx.adj->Contains(seg.dst)) continue;
            push(ctx.adj->IndexOf(seg.dst), t.target);
          }
          break;
        }
      }
    }
  }
  return Status::OK();
}

bool BodyConformsToRegex(const PathBody& body, const Nfa& nfa,
                         const PathPropertyGraph& graph) {
  if (body.nodes.empty()) return false;
  // Zero-width closure at a node: epsilon transitions plus node tests
  // satisfied by the node's labels.
  auto closure_at = [&](std::vector<bool>& states, NodeId node) {
    const LabelSet& labels = graph.Labels(node);
    bool changed = true;
    while (changed) {
      changed = false;
      for (NfaStateId s = 0; s < nfa.num_states(); ++s) {
        if (!states[s]) continue;
        for (const NfaTransition& t : nfa.TransitionsFrom(s)) {
          const bool zero_width =
              t.type == NfaTransition::Type::kEpsilon ||
              (t.type == NfaTransition::Type::kNodeTest &&
               labels.Contains(t.label));
          if (zero_width && !states[t.target]) {
            states[t.target] = true;
            changed = true;
          }
        }
      }
    }
  };

  std::vector<bool> states(nfa.num_states(), false);
  states[nfa.start()] = true;
  closure_at(states, body.nodes.front());

  for (size_t i = 0; i < body.edges.size(); ++i) {
    const EdgeId edge = body.edges[i];
    const auto [s, d] = graph.EdgeEndpoints(edge);
    const bool forward = s == body.nodes[i] && d == body.nodes[i + 1];
    const LabelSet& labels = graph.Labels(edge);
    std::vector<bool> next(nfa.num_states(), false);
    for (NfaStateId q = 0; q < nfa.num_states(); ++q) {
      if (!states[q]) continue;
      for (const NfaTransition& t : nfa.TransitionsFrom(q)) {
        const bool matches =
            t.type == NfaTransition::Type::kAnyEdge ||
            (t.type == NfaTransition::Type::kEdgeForward && forward &&
             labels.Contains(t.label)) ||
            (t.type == NfaTransition::Type::kEdgeBackward && !forward &&
             labels.Contains(t.label));
        if (matches) next[t.target] = true;
      }
    }
    states = std::move(next);
    closure_at(states, body.nodes[i + 1]);
  }
  return states[nfa.accept()];
}

Result<std::set<NodeId>> ReachableFrom(const PathSearchContext& ctx,
                                       NodeId src) {
  std::vector<bool> marks;
  GCORE_RETURN_NOT_OK(ProductReachability(ctx, src, &marks));
  const size_t num_states = ctx.nfa->num_states();
  const NfaStateId accept = ctx.nfa->accept();
  std::set<NodeId> out;
  for (size_t n = 0; n < ctx.adj->num_nodes(); ++n) {
    if (marks[n * num_states + accept]) {
      out.insert(ctx.adj->IdOf(static_cast<DenseNodeIndex>(n)));
    }
  }
  return out;
}

Result<bool> IsReachable(const PathSearchContext& ctx, NodeId src,
                         NodeId dst) {
  GCORE_ASSIGN_OR_RETURN(auto reachable, ReachableFrom(ctx, src));
  return reachable.count(dst) > 0;
}

}  // namespace gcore
