#include "paths/product_bfs.h"

#include <deque>

#include "graph/snapshot.h"
#include "paths/frontier.h"

namespace gcore {

namespace {

/// Resolves the view of a kViewRef transition, caching by name.
class ViewResolver {
 public:
  explicit ViewResolver(const PathViewRegistry* views) : views_(views) {}

  Result<const PathViewRelation*> Resolve(const std::string& name) {
    auto [it, inserted] = cache_.try_emplace(name, nullptr);
    if (inserted) {
      if (views_ == nullptr) {
        return Status::EvaluationError("regex references PATH view '~" + name +
                                       "' but no views are in scope");
      }
      auto rel = views_->Lookup(name);
      if (!rel.ok()) return rel.status();
      it->second = *rel;
    }
    return it->second;
  }

 private:
  const PathViewRegistry* views_;
  std::map<std::string, const PathViewRelation*> cache_;
};

}  // namespace

Status ProductReachability(const PathSearchContext& ctx, NodeId src,
                           std::vector<bool>* marks) {
  if (ctx.adj == nullptr || ctx.nfa == nullptr) {
    return Status::InvalidArgument("path search context is incomplete");
  }
  if (!ctx.adj->Contains(src)) {
    return Status::InvalidArgument("source node is not in the graph");
  }
  const AdjacencyIndex& adj = *ctx.adj;
  const CompiledNfa nfa(*ctx.nfa, adj, ctx.snap);
  const size_t num_states = nfa.num_states();
  marks->assign(adj.num_nodes() * num_states, false);

  std::deque<std::pair<DenseNodeIndex, NfaStateId>> queue;
  auto push = [&](DenseNodeIndex n, NfaStateId q) {
    const size_t idx = static_cast<size_t>(n) * num_states + q;
    if ((*marks)[idx]) return;
    (*marks)[idx] = true;
    queue.emplace_back(n, q);
  };

  push(adj.IndexOf(src), nfa.start());

  ViewResolver resolver(ctx.views);
  while (!queue.empty()) {
    auto [n, q] = queue.front();
    queue.pop_front();
    for (const CompiledTransition& t : nfa.TransitionsFrom(q)) {
      switch (t.type) {
        case NfaTransition::Type::kEpsilon:
          push(n, t.target);
          break;
        case NfaTransition::Type::kNodeTest:
          if (nfa.NodeAdmitted(t, n)) push(n, t.target);
          break;
        case NfaTransition::Type::kAnyEdge:
        case NfaTransition::Type::kEdgeForward:
        case NfaTransition::Type::kEdgeBackward: {
          auto try_entries = [&](const AdjacencyEntry* begin,
                                 const AdjacencyEntry* end) {
            for (const AdjacencyEntry* e = begin; e != end; ++e) {
              if (nfa.EdgeAdmitted(t, *e)) push(e->neighbor, t.target);
            }
          };
          if (t.type != NfaTransition::Type::kEdgeBackward) {
            auto [b, e] = adj.Out(n);
            try_entries(b, e);
          }
          if (t.type != NfaTransition::Type::kEdgeForward) {
            auto [b, e] = adj.In(n);
            try_entries(b, e);
          }
          break;
        }
        case NfaTransition::Type::kViewRef: {
          GCORE_ASSIGN_OR_RETURN(const PathViewRelation* rel,
                                 resolver.Resolve(*t.label));
          for (const PathViewSegment& seg : rel->SegmentsFrom(adj.IdOf(n))) {
            if (!adj.Contains(seg.dst)) continue;
            push(adj.IndexOf(seg.dst), t.target);
          }
          break;
        }
      }
    }
  }
  return Status::OK();
}

bool BodyConformsToRegex(const PathBody& body, const Nfa& nfa,
                         const PathPropertyGraph& graph) {
  if (body.nodes.empty()) return false;
  // Zero-width closure at a node: epsilon transitions plus node tests
  // satisfied by the node's labels.
  auto closure_at = [&](std::vector<bool>& states, NodeId node) {
    const LabelSet& labels = graph.Labels(node);
    bool changed = true;
    while (changed) {
      changed = false;
      for (NfaStateId s = 0; s < nfa.num_states(); ++s) {
        if (!states[s]) continue;
        for (const NfaTransition& t : nfa.TransitionsFrom(s)) {
          const bool zero_width =
              t.type == NfaTransition::Type::kEpsilon ||
              (t.type == NfaTransition::Type::kNodeTest &&
               labels.Contains(t.label));
          if (zero_width && !states[t.target]) {
            states[t.target] = true;
            changed = true;
          }
        }
      }
    }
  };

  std::vector<bool> states(nfa.num_states(), false);
  states[nfa.start()] = true;
  closure_at(states, body.nodes.front());

  for (size_t i = 0; i < body.edges.size(); ++i) {
    const EdgeId edge = body.edges[i];
    const auto [s, d] = graph.EdgeEndpoints(edge);
    const bool forward = s == body.nodes[i] && d == body.nodes[i + 1];
    const LabelSet& labels = graph.Labels(edge);
    std::vector<bool> next(nfa.num_states(), false);
    for (NfaStateId q = 0; q < nfa.num_states(); ++q) {
      if (!states[q]) continue;
      for (const NfaTransition& t : nfa.TransitionsFrom(q)) {
        const bool matches =
            t.type == NfaTransition::Type::kAnyEdge ||
            (t.type == NfaTransition::Type::kEdgeForward && forward &&
             labels.Contains(t.label)) ||
            (t.type == NfaTransition::Type::kEdgeBackward && !forward &&
             labels.Contains(t.label));
        if (matches) next[t.target] = true;
      }
    }
    states = std::move(next);
    closure_at(states, body.nodes[i + 1]);
  }
  return states[nfa.accept()];
}

Result<std::set<NodeId>> ReachableFrom(const PathSearchContext& ctx,
                                       NodeId src) {
  std::vector<bool> marks;
  GCORE_RETURN_NOT_OK(ProductReachability(ctx, src, &marks));
  const size_t num_states = ctx.nfa->num_states();
  const NfaStateId accept = ctx.nfa->accept();
  std::set<NodeId> out;
  // Dense indices ascend with node id: end-hinted insertion is O(1).
  for (size_t n = 0; n < ctx.adj->num_nodes(); ++n) {
    if (marks[n * num_states + accept]) {
      out.emplace_hint(out.end(),
                       ctx.adj->IdOf(static_cast<DenseNodeIndex>(n)));
    }
  }
  return out;
}

namespace {

/// One side of the bidirectional search: marks, the current BFS level and
/// the expansion rule (forward product moves vs. reversed-NFA backward
/// moves — backward edge transitions scan the opposite adjacency spans,
/// and view refs consume segments dst-to-src via ViewBackIndex).
class BidirSide {
 public:
  BidirSide(const PathSearchContext& ctx, const Nfa& nfa, bool backward)
      : adj_(*ctx.adj),
        nfa_(nfa, *ctx.adj, ctx.snap),
        resolver_(ctx.views),
        backward_(backward),
        marks_(ctx.adj->num_nodes() * nfa.num_states(), false) {}

  const std::vector<bool>& marks() const { return marks_; }
  size_t frontier_size() const { return frontier_.size(); }
  bool exhausted() const { return frontier_.empty(); }

  /// Seeds (n, q); returns true when the other side already marked it.
  bool Seed(DenseNodeIndex n, NfaStateId q, const BidirSide& other) {
    return Mark(n, q, other);
  }

  /// Expands one BFS level; returns true on a meet with `other`, sets
  /// `error` (and stops) on a view-resolution failure.
  bool ExpandLevel(const BidirSide& other, Status* error) {
    std::vector<std::pair<DenseNodeIndex, NfaStateId>> level;
    level.swap(frontier_);
    for (auto [n, q] : level) {
      for (const CompiledTransition& t : nfa_.TransitionsFrom(q)) {
        switch (t.type) {
          case NfaTransition::Type::kEpsilon:
            if (Mark(n, t.target, other)) return true;
            break;
          case NfaTransition::Type::kNodeTest:
            if (nfa_.NodeAdmitted(t, n) && Mark(n, t.target, other)) {
              return true;
            }
            break;
          case NfaTransition::Type::kAnyEdge:
          case NfaTransition::Type::kEdgeForward:
          case NfaTransition::Type::kEdgeBackward: {
            // Forward side: kEdgeForward scans Out, kEdgeBackward scans
            // In, kAnyEdge both. The reversed automaton's transitions
            // mean "this edge was crossed towards me", so the backward
            // side swaps the spans.
            const bool scan_out =
                t.type != (backward_ ? NfaTransition::Type::kEdgeForward
                                     : NfaTransition::Type::kEdgeBackward);
            const bool scan_in =
                t.type != (backward_ ? NfaTransition::Type::kEdgeBackward
                                     : NfaTransition::Type::kEdgeForward);
            if (scan_out) {
              auto [b, e] = adj_.Out(n);
              for (const AdjacencyEntry* it = b; it != e; ++it) {
                if (nfa_.EdgeAdmitted(t, *it) &&
                    Mark(it->neighbor, t.target, other)) {
                  return true;
                }
              }
            }
            if (scan_in) {
              auto [b, e] = adj_.In(n);
              for (const AdjacencyEntry* it = b; it != e; ++it) {
                if (nfa_.EdgeAdmitted(t, *it) &&
                    Mark(it->neighbor, t.target, other)) {
                  return true;
                }
              }
            }
            break;
          }
          case NfaTransition::Type::kViewRef: {
            auto rel = resolver_.Resolve(*t.label);
            if (!rel.ok()) {
              *error = rel.status();
              return false;
            }
            if (backward_) {
              for (const PathViewSegment* seg :
                   back_index_.SegmentsInto(**rel, adj_.IdOf(n))) {
                if (!adj_.Contains(seg->src)) continue;
                if (Mark(adj_.IndexOf(seg->src), t.target, other)) {
                  return true;
                }
              }
            } else {
              for (const PathViewSegment& seg :
                   (*rel)->SegmentsFrom(adj_.IdOf(n))) {
                if (!adj_.Contains(seg.dst)) continue;
                if (Mark(adj_.IndexOf(seg.dst), t.target, other)) {
                  return true;
                }
              }
            }
            break;
          }
        }
      }
    }
    return false;
  }

 private:
  bool Mark(DenseNodeIndex n, NfaStateId q, const BidirSide& other) {
    const size_t idx = static_cast<size_t>(n) * nfa_.num_states() + q;
    if (!marks_[idx]) {
      marks_[idx] = true;
      frontier_.emplace_back(n, q);
    }
    // State ids are shared between the automaton and its reversal, so a
    // pair marked on both sides splices a conforming prefix and suffix.
    return other.marks_[idx];
  }

  const AdjacencyIndex& adj_;
  CompiledNfa nfa_;
  ViewResolver resolver_;
  ViewBackIndex back_index_;
  bool backward_;
  std::vector<bool> marks_;
  std::vector<std::pair<DenseNodeIndex, NfaStateId>> frontier_;
};

}  // namespace

Result<bool> IsReachable(const PathSearchContext& ctx, NodeId src,
                         NodeId dst) {
  if (ctx.adj == nullptr || ctx.nfa == nullptr) {
    return Status::InvalidArgument("path search context is incomplete");
  }
  if (!ctx.adj->Contains(src)) {
    return Status::InvalidArgument("source node is not in the graph");
  }
  if (!ctx.adj->Contains(dst)) return false;

  const Nfa reversed = ctx.nfa->Reversed();
  BidirSide fwd(ctx, *ctx.nfa, /*backward=*/false);
  BidirSide bwd(ctx, reversed, /*backward=*/true);
  if (fwd.Seed(ctx.adj->IndexOf(src), ctx.nfa->start(), bwd)) return true;
  if (bwd.Seed(ctx.adj->IndexOf(dst), reversed.start(), fwd)) return true;

  // Alternate expanding the smaller frontier; a side running dry has
  // computed its full fixpoint, so no meet means no conforming walk.
  Status error = Status::OK();
  while (!fwd.exhausted() && !bwd.exhausted()) {
    const bool meet = fwd.frontier_size() <= bwd.frontier_size()
                          ? fwd.ExpandLevel(bwd, &error)
                          : bwd.ExpandLevel(fwd, &error);
    if (!error.ok()) return error;
    if (meet) return true;
  }
  return false;
}

}  // namespace gcore
