// PATH-clause views (Appendix A.4): weighted binary relations over nodes.
//
// `PATH wKnows = (x)-[e:knows]->(y) WHERE ... COST expr` evaluates, per
// binding of the pattern, to a *segment*: a (source, target) node pair with
// a positive cost and a concrete walk body. A regex atom `~wKnows`
// traverses exactly one segment; `<~wKnows*>` composes segments via the
// product Dijkstra.
#ifndef GCORE_PATHS_PATH_VIEW_H_
#define GCORE_PATHS_PATH_VIEW_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/ppg.h"

namespace gcore {

/// One traversable unit of a path view.
struct PathViewSegment {
  NodeId src;
  NodeId dst;
  /// Clause cost; must be > 0 (Appendix A.4 mandates a runtime error
  /// otherwise — enforced at view construction).
  double cost = 1.0;
  /// The concrete walk realizing the segment (nodes/edges of the graph the
  /// view was evaluated on). body.nodes.front() == src, .back() == dst.
  PathBody body;
};

/// All segments of one PATH view, indexed by source node.
class PathViewRelation {
 public:
  PathViewRelation() = default;
  explicit PathViewRelation(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t NumSegments() const { return segments_.size(); }

  /// Adds a segment; rejects non-positive cost.
  Status AddSegment(PathViewSegment segment);

  /// Segments starting at `src` (possibly none).
  const std::vector<PathViewSegment>& SegmentsFrom(NodeId src) const;

  const std::vector<PathViewSegment>& AllSegments() const {
    return segments_;
  }

 private:
  std::string name_;
  std::vector<PathViewSegment> segments_;
  std::map<NodeId, std::vector<PathViewSegment>> by_src_;
};

/// Name → relation registry passed into path search.
class PathViewRegistry {
 public:
  void Register(PathViewRelation relation);
  Result<const PathViewRelation*> Lookup(const std::string& name) const;
  bool Has(const std::string& name) const;
  bool Empty() const { return relations_.empty(); }

 private:
  std::map<std::string, PathViewRelation> relations_;
};

}  // namespace gcore

#endif  // GCORE_PATHS_PATH_VIEW_H_
