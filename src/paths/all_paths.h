// ALL-paths graph projection (lines 32-35 of the guided tour).
//
// `MATCH (n)-/ALL p <r>/->(m)` with the path variable used only to project
// a graph avoids materializing the (possibly infinite) set of conforming
// walks: following Barceló et al. [10], the walks are summarized by the
// subgraph of nodes and edges that lie on *some* conforming walk. That
// subgraph is computable in polynomial time as
//   forward-reachable(src, start) ∩ backward-reachable(dst, accept)
// in the graph × NFA product.
#ifndef GCORE_PATHS_ALL_PATHS_H_
#define GCORE_PATHS_ALL_PATHS_H_

#include <set>

#include "common/result.h"
#include "paths/k_shortest.h"

namespace gcore {

/// The node/edge sets participating in at least one conforming walk from
/// `src` to `dst`.
struct PathProjection {
  std::set<NodeId> nodes;
  std::set<EdgeId> edges;
  bool Empty() const { return nodes.empty(); }
};

/// Computes the ALL-paths projection for one (src, dst) pair.
Result<PathProjection> AllPathsProjection(const PathSearchContext& ctx,
                                          NodeId src, NodeId dst);

}  // namespace gcore

#endif  // GCORE_PATHS_ALL_PATHS_H_
