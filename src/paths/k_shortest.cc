#include "paths/k_shortest.h"

#include <cstdint>
#include <queue>

#include "graph/snapshot.h"
#include "paths/frontier.h"

namespace gcore {

namespace {

/// What a label consumed to reach its (node, state).
struct TraversalStep {
  enum class Kind : uint8_t { kNone, kEdge, kViewSegment };
  Kind kind = Kind::kNone;
  EdgeId edge;                              // kEdge
  const PathViewSegment* segment = nullptr;  // kViewSegment
};

/// One Dijkstra label in the product space.
struct Label {
  double cost = 0.0;
  uint32_t hops = 0;
  DenseNodeIndex node = 0;
  NfaStateId state = 0;
  int32_t parent = -1;  // index into the label arena
  TraversalStep step;
};

/// Min-heap entry; ties broken by insertion order for determinism.
struct HeapEntry {
  double cost;
  uint32_t seq;
  uint32_t label;
  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.seq > b.seq;
  }
};

class ProductDijkstra {
 public:
  ProductDijkstra(const PathSearchContext& ctx, NodeId src, size_t k,
                  std::optional<NodeId> single_dst)
      : ctx_(ctx),
        nfa_(*ctx.nfa, *ctx.adj, ctx.snap),
        k_(k),
        single_dst_(single_dst),
        num_states_(ctx.nfa->num_states()) {
    src_idx_ = ctx_.adj->IndexOf(src);
  }

  Result<std::map<NodeId, std::vector<FoundPath>>> Run() {
    const size_t product_size = ctx_.adj->num_nodes() * num_states_;
    pops_.assign(product_size, 0);

    PushLabel(Label{0.0, 0, src_idx_, ctx_.nfa->start(), -1, {}});

    std::map<NodeId, std::vector<FoundPath>> results;
    size_t single_dst_found = 0;

    while (!heap_.empty()) {
      const HeapEntry top = heap_.top();
      heap_.pop();
      const Label lab = labels_[top.label];
      uint8_t& pop_count = pops_[ProductIndex(lab.node, lab.state)];
      if (pop_count >= k_) continue;
      ++pop_count;

      if (lab.state == ctx_.nfa->accept()) {
        const NodeId dst = ctx_.adj->IdOf(lab.node);
        std::vector<FoundPath>& found = results[dst];
        if (found.size() < k_) {
          FoundPath path = Reconstruct(top.label);
          // NFA ambiguity can reach the same walk through different state
          // sequences; keep distinct bodies only.
          bool duplicate = false;
          for (const FoundPath& existing : found) {
            if (existing.body == path.body) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) {
            found.push_back(std::move(path));
            if (single_dst_ && dst == *single_dst_ &&
                ++single_dst_found >= k_) {
              break;
            }
          }
        }
      }

      GCORE_RETURN_NOT_OK(Expand(top.label));
    }

    // Drop destinations that only accumulated empty vectors (shouldn't
    // occur, but keeps the contract tight).
    for (auto it = results.begin(); it != results.end();) {
      it = it->second.empty() ? results.erase(it) : std::next(it);
    }
    return results;
  }

 private:
  size_t ProductIndex(DenseNodeIndex node, NfaStateId state) const {
    return static_cast<size_t>(node) * num_states_ + state;
  }

  void PushLabel(Label lab) {
    labels_.push_back(lab);
    const uint32_t idx = static_cast<uint32_t>(labels_.size() - 1);
    heap_.push(HeapEntry{lab.cost, idx, idx});
  }

  /// True if following zero-width steps from `label_idx` upward revisits
  /// (node, state) — prevents epsilon cycles from flooding the pop budget.
  bool ZeroWidthCycle(int32_t label_idx, DenseNodeIndex node,
                      NfaStateId state) const {
    int32_t cur = label_idx;
    while (cur >= 0) {
      const Label& l = labels_[cur];
      if (l.node == node && l.state == state) return true;
      if (l.step.kind != TraversalStep::Kind::kNone) break;  // consumed input
      cur = l.parent;
    }
    return false;
  }

  Status Expand(uint32_t label_idx) {
    // Copy: pushing labels may reallocate the arena.
    const Label lab = labels_[label_idx];
    if (ctx_.max_hops != 0 && lab.hops >= ctx_.max_hops) return Status::OK();
    const NodeId here = ctx_.adj->IdOf(lab.node);

    for (const CompiledTransition& t : nfa_.TransitionsFrom(lab.state)) {
      switch (t.type) {
        case NfaTransition::Type::kEpsilon: {
          if (ZeroWidthCycle(label_idx, lab.node, t.target)) break;
          PushLabel(Label{lab.cost, lab.hops, lab.node, t.target,
                          static_cast<int32_t>(label_idx),
                          {}});
          break;
        }
        case NfaTransition::Type::kNodeTest: {
          if (!nfa_.NodeAdmitted(t, lab.node)) break;
          if (ZeroWidthCycle(label_idx, lab.node, t.target)) break;
          PushLabel(Label{lab.cost, lab.hops, lab.node, t.target,
                          static_cast<int32_t>(label_idx),
                          {}});
          break;
        }
        case NfaTransition::Type::kAnyEdge:
        case NfaTransition::Type::kEdgeForward:
        case NfaTransition::Type::kEdgeBackward: {
          ExpandEdges(label_idx, lab, t);
          break;
        }
        case NfaTransition::Type::kViewRef: {
          if (ctx_.views == nullptr) {
            return Status::EvaluationError(
                "regex references PATH view '~" + *t.label +
                "' but no views are in scope");
          }
          GCORE_ASSIGN_OR_RETURN(const PathViewRelation* rel,
                                 ctx_.views->Lookup(*t.label));
          for (const PathViewSegment& seg : rel->SegmentsFrom(here)) {
            if (!ctx_.adj->Contains(seg.dst)) continue;
            TraversalStep step;
            step.kind = TraversalStep::Kind::kViewSegment;
            step.segment = &seg;
            PushLabel(Label{
                lab.cost + seg.cost,
                lab.hops + static_cast<uint32_t>(seg.body.edges.size()),
                ctx_.adj->IndexOf(seg.dst), t.target,
                static_cast<int32_t>(label_idx), step});
          }
          break;
        }
      }
    }
    return Status::OK();
  }

  void ExpandEdges(uint32_t label_idx, const Label& lab,
                   const CompiledTransition& t) {
    auto try_entries = [&](const AdjacencyEntry* begin,
                           const AdjacencyEntry* end) {
      for (const AdjacencyEntry* e = begin; e != end; ++e) {
        if (!nfa_.EdgeAdmitted(t, *e)) continue;
        TraversalStep step;
        step.kind = TraversalStep::Kind::kEdge;
        step.edge = e->edge;
        PushLabel(Label{lab.cost + 1.0, lab.hops + 1, e->neighbor, t.target,
                        static_cast<int32_t>(label_idx), step});
      }
    };
    if (t.type == NfaTransition::Type::kAnyEdge ||
        t.type == NfaTransition::Type::kEdgeForward) {
      auto [b, e] = ctx_.adj->Out(lab.node);
      try_entries(b, e);
    }
    if (t.type == NfaTransition::Type::kAnyEdge ||
        t.type == NfaTransition::Type::kEdgeBackward) {
      auto [b, e] = ctx_.adj->In(lab.node);
      try_entries(b, e);
    }
  }

  FoundPath Reconstruct(uint32_t label_idx) const {
    std::vector<const Label*> chain;
    for (int32_t cur = static_cast<int32_t>(label_idx); cur >= 0;
         cur = labels_[cur].parent) {
      chain.push_back(&labels_[cur]);
    }
    FoundPath out;
    out.cost = labels_[label_idx].cost;
    out.body.nodes.push_back(ctx_.adj->IdOf(src_idx_));
    const PathPropertyGraph& graph = ctx_.adj->graph();
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const Label& l = **it;
      switch (l.step.kind) {
        case TraversalStep::Kind::kNone:
          break;
        case TraversalStep::Kind::kEdge: {
          const NodeId prev = out.body.nodes.back();
          auto [s, d] = graph.EdgeEndpoints(l.step.edge);
          out.body.edges.push_back(l.step.edge);
          out.body.nodes.push_back(s == prev ? d : s);
          break;
        }
        case TraversalStep::Kind::kViewSegment: {
          const PathBody& seg = l.step.segment->body;
          // Junction node is already present; append the rest.
          for (size_t i = 0; i < seg.edges.size(); ++i) {
            out.body.edges.push_back(seg.edges[i]);
            out.body.nodes.push_back(seg.nodes[i + 1]);
          }
          break;
        }
      }
    }
    out.hops = out.body.edges.size();
    return out;
  }

  const PathSearchContext& ctx_;
  /// Admission over interned snapshot labels when ctx.snap is set.
  const CompiledNfa nfa_;
  const size_t k_;
  const std::optional<NodeId> single_dst_;
  const size_t num_states_;
  DenseNodeIndex src_idx_ = 0;

  std::vector<Label> labels_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::vector<uint8_t> pops_;
};

Status ValidateContext(const PathSearchContext& ctx, NodeId src, size_t k) {
  if (ctx.adj == nullptr || ctx.nfa == nullptr) {
    return Status::InvalidArgument("path search context is incomplete");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1 for k-shortest search");
  }
  if (k > 255) {
    return Status::InvalidArgument("k-shortest supports k <= 255");
  }
  if (!ctx.adj->Contains(src)) {
    return Status::InvalidArgument("source node is not in the graph");
  }
  return Status::OK();
}

}  // namespace

Result<std::map<NodeId, std::vector<FoundPath>>> KShortestPathsFrom(
    const PathSearchContext& ctx, NodeId src, size_t k) {
  GCORE_RETURN_NOT_OK(ValidateContext(ctx, src, k));
  ProductDijkstra search(ctx, src, k, std::nullopt);
  return search.Run();
}

Result<std::vector<FoundPath>> KShortestPaths(const PathSearchContext& ctx,
                                              NodeId src, NodeId dst,
                                              size_t k) {
  GCORE_RETURN_NOT_OK(ValidateContext(ctx, src, k));
  if (!ctx.adj->Contains(dst)) {
    return Status::InvalidArgument("destination node is not in the graph");
  }
  ProductDijkstra search(ctx, src, k, dst);
  GCORE_ASSIGN_OR_RETURN(auto all, search.Run());
  auto it = all.find(dst);
  if (it == all.end()) return std::vector<FoundPath>{};
  return std::move(it->second);
}

Result<std::optional<FoundPath>> ShortestPath(const PathSearchContext& ctx,
                                              NodeId src, NodeId dst) {
  GCORE_ASSIGN_OR_RETURN(auto paths, KShortestPaths(ctx, src, dst, 1));
  if (paths.empty()) return std::optional<FoundPath>{};
  return std::optional<FoundPath>{std::move(paths.front())};
}

Result<std::map<NodeId, FoundPath>> ShortestPathsFrom(
    const PathSearchContext& ctx, NodeId src) {
  GCORE_ASSIGN_OR_RETURN(auto all, KShortestPathsFrom(ctx, src, 1));
  std::map<NodeId, FoundPath> out;
  for (auto& [dst, paths] : all) {
    out.emplace(dst, std::move(paths.front()));
  }
  return out;
}

}  // namespace gcore
