// Reachability over the graph × NFA product (unit-cost BFS).
//
// Backs the paper's reachability semantics: a path pattern without a bound
// path variable (`-/<:knows*>/->`, lines 28-31) is a boolean reachability
// test, evaluable without materializing any path.
#ifndef GCORE_PATHS_PRODUCT_BFS_H_
#define GCORE_PATHS_PRODUCT_BFS_H_

#include <set>

#include "common/result.h"
#include "paths/k_shortest.h"

namespace gcore {

/// All nodes reachable from `src` via a walk conforming to the regex
/// (including `src` itself when the regex accepts the empty walk at it).
Result<std::set<NodeId>> ReachableFrom(const PathSearchContext& ctx,
                                       NodeId src);

/// True when some walk from `src` to `dst` conforms to the regex.
Result<bool> IsReachable(const PathSearchContext& ctx, NodeId src, NodeId dst);

/// Forward product reachability: marks (node, state) pairs reachable from
/// (src, nfa start). `marks` has adj->num_nodes() * nfa->num_states()
/// slots, indexed node * num_states + state. Exposed for the ALL-paths
/// projection.
Status ProductReachability(const PathSearchContext& ctx, NodeId src,
                           std::vector<bool>* marks);

/// True when a concrete walk (a stored path's δ) conforms to the regex —
/// the conformance test of Appendix A.1, used by `-/@p <regex>/->`
/// stored-path matching. View-ref transitions never match here.
bool BodyConformsToRegex(const PathBody& body, const Nfa& nfa,
                         const PathPropertyGraph& graph);

}  // namespace gcore

#endif  // GCORE_PATHS_PRODUCT_BFS_H_
