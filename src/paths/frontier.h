// Shared infrastructure of the parallel path kernels.
//
// The batch-oriented engines (delta_stepping.h, batched_bfs.h, the
// bidirectional product-BFS) share three ingredients:
//
//   * CompiledNfa — the regex automaton with every transition label
//     pre-resolved against a GraphSnapshot's interned label ids, so the
//     per-half-edge admission test is one sorted-span lookup over dense
//     indices instead of a std::map walk plus string compares. Without a
//     snapshot (raw-AdjacencyIndex callers: tests, benches) admission
//     falls back to the PPG label sets with identical semantics.
//
//   * ParallelFor — a deterministic fan-out helper: fixed contiguous
//     slicing over an index range onto at most `parallelism` worker
//     threads. Callers keep per-index output slots, so results are a
//     pure function of the input regardless of thread schedule.
//
//   * ViewBackIndex — a lazily built dst-keyed index over PATH-view
//     segments, the backward analogue of PathViewRelation::SegmentsFrom
//     (backward product sweeps would otherwise rescan AllSegments per
//     visited node).
//
// Determinism contract (see ROADMAP "Parallel path engine"): every kernel
// built on these helpers returns bit-identical results at every
// parallelism degree — workers only produce into pre-assigned slots or
// thread-local buffers that a coordinator merges in fixed slice order.
#ifndef GCORE_PATHS_FRONTIER_H_
#define GCORE_PATHS_FRONTIER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/snapshot.h"
#include "paths/nfa.h"
#include "paths/path_view.h"

namespace gcore {

/// Resolves a requested degree: 0 means one per hardware thread; the
/// result is always >= 1.
size_t ResolveParallelism(size_t requested);

/// Runs fn(i) for i in [0, n) across at most `parallelism` threads.
/// Work is claimed via an atomic counter, but each index owns its own
/// output slot, so results never depend on the schedule. fn must not
/// throw; report errors through per-index slots.
void ParallelFor(size_t parallelism, size_t n,
                 const std::function<void(size_t)>& fn);

/// One NFA transition with its label resolved against a snapshot.
struct CompiledTransition {
  NfaTransition::Type type;
  NfaStateId target;
  /// Interned label id; GraphSnapshot::kNoLabel when the label occurs
  /// nowhere in the graph (the transition then admits nothing) or when no
  /// snapshot is available (string fallback).
  uint32_t label_id = GraphSnapshot::kNoLabel;
  /// Borrowed from the source Nfa (view names and the no-snapshot
  /// fallback path).
  const std::string* label = nullptr;
};

/// An Nfa with transition labels pre-interned against a snapshot. Borrows
/// the Nfa, the adjacency index and (optionally) the snapshot — all must
/// outlive it.
class CompiledNfa {
 public:
  /// `snap` may be null (raw-adjacency callers); admission then routes
  /// through the PPG's string label sets.
  CompiledNfa(const Nfa& nfa, const AdjacencyIndex& adj,
              const GraphSnapshot* snap);

  size_t num_states() const { return states_.size(); }
  NfaStateId start() const { return start_; }
  NfaStateId accept() const { return accept_; }
  const std::vector<CompiledTransition>& TransitionsFrom(NfaStateId s) const {
    return states_[s];
  }

  /// Edge admission of a half-edge against an edge transition
  /// (kAnyEdge/kEdgeForward/kEdgeBackward); direction is the caller's
  /// business (it picks the Out/In span).
  bool EdgeAdmitted(const CompiledTransition& t,
                    const AdjacencyEntry& e) const {
    if (t.type == NfaTransition::Type::kAnyEdge) return true;
    if (snap_ != nullptr) {
      return t.label_id != GraphSnapshot::kNoLabel &&
             snap_->EdgeHasLabel(e.edge_dense, t.label_id);
    }
    return adj_->graph().Labels(e.edge).Contains(*t.label);
  }

  /// Node-test admission (kNodeTest) of the node at dense index `n`.
  bool NodeAdmitted(const CompiledTransition& t, DenseNodeIndex n) const {
    if (snap_ != nullptr) {
      return t.label_id != GraphSnapshot::kNoLabel &&
             snap_->NodeHasLabel(n, t.label_id);
    }
    return adj_->graph().Labels(adj_->IdOf(n)).Contains(*t.label);
  }

 private:
  const AdjacencyIndex* adj_;
  const GraphSnapshot* snap_;
  NfaStateId start_;
  NfaStateId accept_;
  std::vector<std::vector<CompiledTransition>> states_;
};

/// Lazily built dst-keyed segment index over PATH-view relations: the
/// backward analogue of PathViewRelation::SegmentsFrom. Not thread-safe;
/// one instance per (serial) sweep.
class ViewBackIndex {
 public:
  /// Segments of `rel` ending at `dst` (possibly empty). Pointers borrow
  /// from the relation.
  const std::vector<const PathViewSegment*>& SegmentsInto(
      const PathViewRelation& rel, NodeId dst);

 private:
  std::map<const PathViewRelation*,
           std::map<NodeId, std::vector<const PathViewSegment*>>>
      by_rel_;
};

}  // namespace gcore

#endif  // GCORE_PATHS_FRONTIER_H_
