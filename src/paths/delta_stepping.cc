#include "paths/delta_stepping.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <queue>

#include "paths/frontier.h"

namespace gcore {

DenseEdgeWeightFn WrapWeightFn(EdgeWeightFn fn) {
  return [fn = std::move(fn)](const AdjacencyEntry& e) {
    return fn(e.edge, e.forward);
  };
}

DenseEdgeWeightFn SnapshotWeightFn(GraphSnapshot::EdgeWeightView weights) {
  return [weights](const AdjacencyEntry& e) { return weights.At(e.edge_dense); };
}

namespace {

constexpr char kNegativeWeightError[] =
    "Dijkstra requires non-negative edge weights";

/// One proposed relaxation, produced by a worker, applied by the
/// coordinator.
struct Candidate {
  DenseNodeIndex node;
  double dist;
  int64_t parent;
  /// Tiebreak key at equal distance: edge-id value for graph kernels,
  /// segment ordinal within SegmentsFrom(parent) for view kernels.
  uint64_t tie;
  EdgeId edge;
  const PathViewSegment* seg = nullptr;
  /// Weight was > 0: eligible for the canonical parent tiebreak (a
  /// positive-weight tie parent has strictly smaller distance, so the
  /// parent forest stays acyclic).
  bool tie_ok = false;
};

/// Distance/parent arrays plus the canonical acceptance rule shared by
/// the graph and view SSSP kernels.
struct DeltaState {
  std::vector<double> dist;
  std::vector<int64_t> parent;
  std::vector<uint64_t> tie;
  std::vector<EdgeId> edge;
  std::vector<const PathViewSegment*> seg;

  DeltaState(size_t n, bool track_seg) {
    dist.assign(n, SsspResult::kUnreachable);
    parent.assign(n, -1);
    tie.assign(n, 0);
    edge.assign(n, EdgeId());
    if (track_seg) seg.assign(n, nullptr);
  }

  void Store(const Candidate& c) {
    parent[c.node] = c.parent;
    tie[c.node] = c.tie;
    edge[c.node] = c.edge;
    if (!seg.empty()) seg[c.node] = c.seg;
  }

  /// Canonical acceptance: strictly smaller distance always wins; at
  /// equal distance a positive-weight candidate with a smaller
  /// (parent, tie) pair replaces the incumbent parent without requeueing.
  /// Returns true when the distance improved (the node must requeue).
  bool Apply(const Candidate& c) {
    double& d = dist[c.node];
    if (c.dist < d) {
      d = c.dist;
      Store(c);
      return true;
    }
    if (c.dist == d && c.tie_ok && parent[c.node] >= 0 &&
        (c.parent < parent[c.node] ||
         (c.parent == parent[c.node] && c.tie < tie[c.node]))) {
      Store(c);
    }
    return false;
  }
};

/// Mean of up to `cap` sampled weights; the classic Δ ≈ average-weight
/// heuristic. Falls back to 1.0 (unit weights / empty sample).
template <typename Sampler>
double AutoDelta(double requested, Sampler&& sample) {
  if (requested > 0.0) return requested;
  double sum = 0.0;
  size_t count = 0;
  sample(/*cap=*/size_t{1024}, [&](double w) {
    sum += w;
    ++count;
  });
  const double mean = count == 0 ? 1.0 : sum / static_cast<double>(count);
  return mean > 0.0 ? mean : 1.0;
}

/// The bucketed coordinator loop. `expand(u, du, out)` appends the
/// relaxation candidates of node `u` at distance `du`; it returns false
/// on a negative weight. Workers expand disjoint contiguous frontier
/// slices against the frozen distance array; the coordinator merges the
/// slice buffers in order, so the candidate sequence — and with the
/// canonical Apply rule the whole result — is identical at every
/// parallelism degree.
template <typename Expander>
Status RunDelta(DeltaState& state, DenseNodeIndex src_idx, double delta,
                size_t parallelism, Expander&& expand) {
  state.dist[src_idx] = 0.0;
  auto bucket_of = [delta](double d) {
    return static_cast<uint64_t>(d / delta);
  };
  std::map<uint64_t, std::vector<DenseNodeIndex>> buckets;
  buckets[0].push_back(src_idx);

  const size_t degree = ResolveParallelism(parallelism);
  std::vector<uint32_t> stamp(state.dist.size(), 0);
  uint32_t round = 0;

  while (!buckets.empty()) {
    auto it = buckets.begin();
    const uint64_t idx = it->first;
    std::vector<DenseNodeIndex> pending = std::move(it->second);
    buckets.erase(it);

    // Inner fixpoint: relax the bucket until no node of it changes.
    while (!pending.empty()) {
      ++round;
      std::vector<DenseNodeIndex> frontier;
      frontier.reserve(pending.size());
      for (DenseNodeIndex u : pending) {
        if (stamp[u] == round) continue;              // duplicate this wave
        if (bucket_of(state.dist[u]) != idx) continue;  // migrated buckets
        stamp[u] = round;
        frontier.push_back(u);
      }
      pending.clear();
      if (frontier.empty()) break;

      const size_t grain =
          std::max<size_t>(16, (frontier.size() + degree * 4 - 1) /
                                   (degree * 4));
      const size_t slices = (frontier.size() + grain - 1) / grain;
      std::vector<std::vector<Candidate>> buffers(slices);
      std::atomic<bool> negative{false};
      ParallelFor(degree, slices, [&](size_t sl) {
        const size_t lo = sl * grain;
        const size_t hi = std::min(frontier.size(), lo + grain);
        for (size_t i = lo; i < hi; ++i) {
          const DenseNodeIndex u = frontier[i];
          if (!expand(u, state.dist[u], &buffers[sl])) {
            negative.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
      if (negative.load()) return Status::EvaluationError(kNegativeWeightError);

      for (const auto& buf : buffers) {
        for (const Candidate& c : buf) {
          if (!state.Apply(c)) continue;
          const uint64_t b = bucket_of(c.dist);
          if (b == idx) {
            pending.push_back(c.node);
          } else {
            buckets[b].push_back(c.node);
          }
        }
      }
    }
  }
  return Status::OK();
}

/// Appends the graph relaxation candidates of `u`; shared by the delta
/// kernel's workers and the serial heap spec below.
bool ExpandGraphNode(const AdjacencyIndex& adj, const DenseEdgeWeightFn& weight,
                     bool follow_forward, bool follow_backward,
                     DenseNodeIndex u, double du,
                     std::vector<Candidate>* out) {
  auto visit = [&](const AdjacencyEntry* begin, const AdjacencyEntry* end) {
    for (const AdjacencyEntry* e = begin; e != end; ++e) {
      std::optional<double> w = weight(*e);
      if (!w.has_value()) continue;
      if (*w < 0.0) return false;
      out->push_back(Candidate{e->neighbor, du + *w, static_cast<int64_t>(u),
                               e->edge.value(), e->edge, nullptr, *w > 0.0});
    }
    return true;
  };
  if (follow_forward) {
    auto [b, e] = adj.Out(u);
    if (!visit(b, e)) return false;
  }
  if (follow_backward) {
    auto [b, e] = adj.In(u);
    if (!visit(b, e)) return false;
  }
  return true;
}

SsspResult ExtractSssp(const DeltaState& state) {
  SsspResult r;
  r.distance = state.dist;
  r.parent = state.parent;
  r.parent_edge = state.edge;
  return r;
}

/// Serial binary-heap spec with the same canonical tiebreak — the
/// small-graph fallback. Pop order (distance, node index) matches
/// DijkstraFrom, so the two agree even on zero-weight discovery-order
/// parents.
Result<SsspResult> HeapSsspFrom(const AdjacencyIndex& adj, DenseNodeIndex s,
                                const DenseEdgeWeightFn& weight,
                                bool follow_forward, bool follow_backward) {
  DeltaState state(adj.num_nodes(), /*track_seg=*/false);
  state.dist[s] = 0.0;

  using Entry = std::pair<double, DenseNodeIndex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.emplace(0.0, s);
  std::vector<bool> settled(adj.num_nodes(), false);
  std::vector<Candidate> buf;
  while (!heap.empty()) {
    auto [dist, n] = heap.top();
    heap.pop();
    if (settled[n]) continue;
    settled[n] = true;
    buf.clear();
    if (!ExpandGraphNode(adj, weight, follow_forward, follow_backward, n, dist,
                         &buf)) {
      return Status::EvaluationError(kNegativeWeightError);
    }
    for (const Candidate& c : buf) {
      if (state.Apply(c)) heap.emplace(c.dist, c.node);
    }
  }
  return ExtractSssp(state);
}

}  // namespace

Result<SsspResult> DeltaSsspFrom(const AdjacencyIndex& adj, NodeId src,
                                 const DenseEdgeWeightFn& weight,
                                 const ParallelSsspOptions& opts,
                                 bool follow_forward, bool follow_backward) {
  const DenseNodeIndex s = adj.IndexOf(src);
  if (opts.serial_cutoff != 0 && adj.num_nodes() < opts.serial_cutoff) {
    return HeapSsspFrom(adj, s, weight, follow_forward, follow_backward);
  }
  const double delta = AutoDelta(opts.delta, [&](size_t cap, auto&& take) {
    size_t seen = 0;
    for (DenseNodeIndex n = 0; n < adj.num_nodes() && seen < cap; ++n) {
      auto [b, e] = adj.Out(n);
      for (const AdjacencyEntry* it = b; it != e && seen < cap; ++it) {
        std::optional<double> w = weight(*it);
        if (w.has_value() && *w >= 0.0) {
          take(*w);
          ++seen;
        }
      }
    }
  });
  DeltaState state(adj.num_nodes(), /*track_seg=*/false);
  Status st = RunDelta(state, s, delta, opts.parallelism,
                       [&](DenseNodeIndex u, double du,
                           std::vector<Candidate>* out) {
                         return ExpandGraphNode(adj, weight, follow_forward,
                                                follow_backward, u, du, out);
                       });
  if (!st.ok()) return st;
  return ExtractSssp(state);
}

namespace {

/// One queued K-SSSP label: a walk-cost class representative. Unlike the
/// SSSP frontier, labels carry their own value and each accepted label
/// expands exactly once (two equal-cost labels at one node are two
/// distinct walks — both expand, preserving multiplicity downstream).
struct KLabel {
  DenseNodeIndex node;
  double dist;
};

/// The per-node accepted list: the up-to-k cheapest walk costs seen so
/// far, ascending. Returns true when `d` entered the list (queue the
/// label). The j-th cheapest walk to any node extends a walk that is
/// among the j cheapest at its predecessor, so rejecting d > back on a
/// full list is exact, not heuristic.
bool KAccept(std::vector<double>& list, size_t k, double d) {
  if (list.size() < k) {
    list.insert(std::upper_bound(list.begin(), list.end(), d), d);
    return true;
  }
  if (d < list.back()) {
    list.pop_back();
    list.insert(std::upper_bound(list.begin(), list.end(), d), d);
    return true;
  }
  return false;
}

/// A label is stale when later accepts displaced its value off the list.
bool KStale(const std::vector<double>& list, size_t k, double d) {
  return list.size() == k && d > list.back();
}

bool ExpandKLabel(const AdjacencyIndex& adj, const DenseEdgeWeightFn& weight,
                  bool follow_forward, bool follow_backward, KLabel label,
                  std::vector<KLabel>* out) {
  auto visit = [&](const AdjacencyEntry* begin, const AdjacencyEntry* end) {
    for (const AdjacencyEntry* e = begin; e != end; ++e) {
      std::optional<double> w = weight(*e);
      if (!w.has_value()) continue;
      if (*w < 0.0) return false;
      out->push_back(KLabel{e->neighbor, label.dist + *w});
    }
    return true;
  };
  if (follow_forward) {
    auto [b, e] = adj.Out(label.node);
    if (!visit(b, e)) return false;
  }
  if (follow_backward) {
    auto [b, e] = adj.In(label.node);
    if (!visit(b, e)) return false;
  }
  return true;
}

}  // namespace

Result<KSsspDistances> KSsspHeapFrom(const AdjacencyIndex& adj, NodeId src,
                                     const DenseEdgeWeightFn& weight, size_t k,
                                     bool follow_forward,
                                     bool follow_backward) {
  KSsspDistances accepted(adj.num_nodes());
  if (k == 0) return accepted;
  using Entry = std::pair<double, DenseNodeIndex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  std::vector<size_t> pops(adj.num_nodes(), 0);
  heap.emplace(0.0, adj.IndexOf(src));
  std::vector<KLabel> buf;
  while (!heap.empty()) {
    auto [dist, n] = heap.top();
    heap.pop();
    if (pops[n] >= k) continue;
    ++pops[n];
    accepted[n].push_back(dist);
    buf.clear();
    if (!ExpandKLabel(adj, weight, follow_forward, follow_backward,
                      KLabel{n, dist}, &buf)) {
      return Status::EvaluationError(kNegativeWeightError);
    }
    for (const KLabel& l : buf) {
      // Exact prune (see KAccept): an l.dist beyond the node's current
      // k-th best can never extend into any node's k best.
      if (pops[l.node] >= k) continue;
      heap.emplace(l.dist, l.node);
    }
  }
  return accepted;
}

Result<KSsspDistances> DeltaKSsspFrom(const AdjacencyIndex& adj, NodeId src,
                                      const DenseEdgeWeightFn& weight, size_t k,
                                      const ParallelSsspOptions& opts,
                                      bool follow_forward,
                                      bool follow_backward) {
  KSsspDistances accepted(adj.num_nodes());
  if (k == 0) return accepted;
  if (opts.serial_cutoff != 0 && adj.num_nodes() < opts.serial_cutoff) {
    return KSsspHeapFrom(adj, src, weight, k, follow_forward, follow_backward);
  }
  const double delta = AutoDelta(opts.delta, [&](size_t cap, auto&& take) {
    size_t seen = 0;
    for (DenseNodeIndex n = 0; n < adj.num_nodes() && seen < cap; ++n) {
      auto [b, e] = adj.Out(n);
      for (const AdjacencyEntry* it = b; it != e && seen < cap; ++it) {
        std::optional<double> w = weight(*it);
        if (w.has_value() && *w >= 0.0) {
          take(*w);
          ++seen;
        }
      }
    }
  });
  auto bucket_of = [delta](double d) {
    return static_cast<uint64_t>(d / delta);
  };

  const size_t degree = ResolveParallelism(opts.parallelism);
  std::map<uint64_t, std::vector<KLabel>> buckets;
  const DenseNodeIndex s = adj.IndexOf(src);
  KAccept(accepted[s], k, 0.0);
  buckets[0].push_back(KLabel{s, 0.0});

  while (!buckets.empty()) {
    auto it = buckets.begin();
    const uint64_t idx = it->first;
    std::vector<KLabel> pending = std::move(it->second);
    buckets.erase(it);
    while (!pending.empty()) {
      std::vector<KLabel> frontier;
      frontier.reserve(pending.size());
      for (const KLabel& l : pending) {
        if (!KStale(accepted[l.node], k, l.dist)) frontier.push_back(l);
      }
      pending.clear();
      if (frontier.empty()) break;

      const size_t grain =
          std::max<size_t>(16, (frontier.size() + degree * 4 - 1) /
                                   (degree * 4));
      const size_t slices = (frontier.size() + grain - 1) / grain;
      std::vector<std::vector<KLabel>> buffers(slices);
      std::atomic<bool> negative{false};
      ParallelFor(degree, slices, [&](size_t sl) {
        const size_t lo = sl * grain;
        const size_t hi = std::min(frontier.size(), lo + grain);
        for (size_t i = lo; i < hi; ++i) {
          if (!ExpandKLabel(adj, weight, follow_forward, follow_backward,
                            frontier[i], &buffers[sl])) {
            negative.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
      if (negative.load()) return Status::EvaluationError(kNegativeWeightError);

      for (const auto& buf : buffers) {
        for (const KLabel& l : buf) {
          if (!KAccept(accepted[l.node], k, l.dist)) continue;
          const uint64_t b = bucket_of(l.dist);
          if (b == idx) {
            pending.push_back(l);
          } else {
            buckets[b].push_back(l);
          }
        }
      }
    }
  }
  return accepted;
}

Result<ViewSsspResult> ViewStarSssp(const AdjacencyIndex& adj,
                                    const PathViewRelation& view, NodeId src,
                                    const ParallelSsspOptions& opts) {
  if (!adj.Contains(src)) {
    return Status::EvaluationError("path search source is not in the graph");
  }
  const double delta = AutoDelta(opts.delta, [&](size_t cap, auto&& take) {
    const auto& segs = view.AllSegments();
    for (size_t i = 0; i < segs.size() && i < cap; ++i) take(segs[i].cost);
  });
  DeltaState state(adj.num_nodes(), /*track_seg=*/true);
  Status st = RunDelta(
      state, adj.IndexOf(src), delta, opts.parallelism,
      [&](DenseNodeIndex u, double du, std::vector<Candidate>* out) {
        const auto& segs = view.SegmentsFrom(adj.IdOf(u));
        for (size_t i = 0; i < segs.size(); ++i) {
          const PathViewSegment& seg = segs[i];
          if (!adj.Contains(seg.dst)) continue;
          // View costs are > 0 by construction (path_view.h), so every
          // candidate is tiebreak-eligible: parents are fully canonical.
          out->push_back(Candidate{adj.IndexOf(seg.dst), du + seg.cost,
                                   static_cast<int64_t>(u),
                                   static_cast<uint64_t>(i), EdgeId(), &seg,
                                   /*tie_ok=*/true});
        }
        return true;
      });
  if (!st.ok()) return st;
  ViewSsspResult r;
  r.distance = std::move(state.dist);
  r.parent = std::move(state.parent);
  r.parent_seg = std::move(state.seg);
  return r;
}

std::optional<PathBody> ReconstructViewWalk(const AdjacencyIndex& adj,
                                            const ViewSsspResult& sssp,
                                            NodeId src, NodeId dst) {
  const DenseNodeIndex s = adj.IndexOf(src);
  const DenseNodeIndex d = adj.IndexOf(dst);
  if (!sssp.Reached(d)) return std::nullopt;
  std::vector<const PathViewSegment*> chain;
  for (DenseNodeIndex cur = d; cur != s;
       cur = static_cast<DenseNodeIndex>(sssp.parent[cur])) {
    chain.push_back(sssp.parent_seg[cur]);
  }
  std::reverse(chain.begin(), chain.end());
  PathBody body;
  body.nodes.push_back(src);
  for (const PathViewSegment* seg : chain) {
    body.nodes.insert(body.nodes.end(), seg->body.nodes.begin() + 1,
                      seg->body.nodes.end());
    body.edges.insert(body.edges.end(), seg->body.edges.begin(),
                      seg->body.edges.end());
  }
  return body;
}

}  // namespace gcore
