// k-shortest conforming walks via Dijkstra over the graph × NFA product.
//
// This is the engine behind every path feature of the paper:
//   - `-/p <:knows*>/->`            shortest walk conforming to an RPQ,
//   - `-/3 SHORTEST p <...> COST c/->` k cheapest walks per (src, dst),
//   - `-/p <~wKnows*>/->`           weighted shortest over PATH views,
// all in polynomial time in data size (Section 4): labels settle at most k
// times per (node, NFA-state) product state.
//
// Determinism: ties are broken by label insertion order on top of the
// deterministic neighbor order of AdjacencyIndex, realizing the paper's
// "fixed lexicographical order" tiebreak (Appendix A.1, footnote 4).
#ifndef GCORE_PATHS_K_SHORTEST_H_
#define GCORE_PATHS_K_SHORTEST_H_

#include <map>
#include <optional>
#include <vector>

#include "common/result.h"
#include "graph/adjacency.h"
#include "paths/nfa.h"
#include "paths/path_view.h"

namespace gcore {

class GraphSnapshot;

/// One discovered conforming walk.
struct FoundPath {
  PathBody body;
  /// Sum of traversal costs: 1 per plain edge, the clause cost per PATH
  /// view segment. Equals hop count for view-free regexes.
  double cost = 0.0;
  /// Number of graph edges in `body`.
  size_t hops = 0;
};

/// Inputs shared by all path searches.
struct PathSearchContext {
  const AdjacencyIndex* adj = nullptr;
  const Nfa* nfa = nullptr;
  /// Required iff the regex references `~view` atoms.
  const PathViewRegistry* views = nullptr;
  /// Optional frozen snapshot of the same graph. When set, kernels admit
  /// edge/node labels via interned ids over dense indices (CompiledNfa)
  /// instead of the PPG's string label sets — same semantics, no string
  /// compares on the hot path.
  const GraphSnapshot* snap = nullptr;
  /// Safety bound on walk length in edges (0 = unlimited).
  size_t max_hops = 0;
  /// Worker threads for the batched kernels (1 = serial, 0 = one per
  /// hardware thread). Kernel results are identical at every degree.
  size_t parallelism = 1;
};

/// Finds, for every destination node reachable from `src` by a walk
/// conforming to the regex, up to `k` cheapest distinct walks in
/// nondecreasing cost order.
Result<std::map<NodeId, std::vector<FoundPath>>> KShortestPathsFrom(
    const PathSearchContext& ctx, NodeId src, size_t k);

/// Single-pair variant; stops as soon as `k` walks to `dst` are found.
Result<std::vector<FoundPath>> KShortestPaths(const PathSearchContext& ctx,
                                              NodeId src, NodeId dst,
                                              size_t k);

/// Cheapest conforming walk from `src` to `dst`, or nullopt.
Result<std::optional<FoundPath>> ShortestPath(const PathSearchContext& ctx,
                                              NodeId src, NodeId dst);

/// Cheapest conforming walk from `src` to every reachable destination.
Result<std::map<NodeId, FoundPath>> ShortestPathsFrom(
    const PathSearchContext& ctx, NodeId src);

}  // namespace gcore

#endif  // GCORE_PATHS_K_SHORTEST_H_
