#include "paths/nfa.h"

#include <deque>
#include <sstream>

namespace gcore {

NfaStateId Nfa::AddState() {
  transitions_.emplace_back();
  return static_cast<NfaStateId>(transitions_.size() - 1);
}

void Nfa::AddTransition(NfaStateId from, NfaTransition t) {
  transitions_[from].push_back(std::move(t));
}

std::pair<NfaStateId, NfaStateId> Nfa::Build(const RpqExpr& expr) {
  using Kind = RpqExpr::Kind;
  using Type = NfaTransition::Type;
  switch (expr.kind()) {
    case Kind::kAnyEdge: {
      NfaStateId a = AddState(), b = AddState();
      AddTransition(a, {Type::kAnyEdge, b, ""});
      return {a, b};
    }
    case Kind::kEdgeLabel: {
      NfaStateId a = AddState(), b = AddState();
      AddTransition(a, {Type::kEdgeForward, b, expr.label()});
      return {a, b};
    }
    case Kind::kInverseEdgeLabel: {
      NfaStateId a = AddState(), b = AddState();
      AddTransition(a, {Type::kEdgeBackward, b, expr.label()});
      return {a, b};
    }
    case Kind::kNodeLabel: {
      NfaStateId a = AddState(), b = AddState();
      AddTransition(a, {Type::kNodeTest, b, expr.label()});
      return {a, b};
    }
    case Kind::kViewRef: {
      NfaStateId a = AddState(), b = AddState();
      AddTransition(a, {Type::kViewRef, b, expr.label()});
      return {a, b};
    }
    case Kind::kConcat: {
      if (expr.children().empty()) {
        NfaStateId a = AddState();
        return {a, a};
      }
      auto [entry, exit] = Build(*expr.children()[0]);
      for (size_t i = 1; i < expr.children().size(); ++i) {
        auto [e2, x2] = Build(*expr.children()[i]);
        AddTransition(exit, {Type::kEpsilon, e2, ""});
        exit = x2;
      }
      return {entry, exit};
    }
    case Kind::kAlt: {
      NfaStateId a = AddState(), b = AddState();
      for (const auto& child : expr.children()) {
        auto [e, x] = Build(*child);
        AddTransition(a, {Type::kEpsilon, e, ""});
        AddTransition(x, {Type::kEpsilon, b, ""});
      }
      return {a, b};
    }
    case Kind::kStar: {
      NfaStateId a = AddState(), b = AddState();
      auto [e, x] = Build(*expr.children()[0]);
      AddTransition(a, {Type::kEpsilon, e, ""});
      AddTransition(a, {Type::kEpsilon, b, ""});
      AddTransition(x, {Type::kEpsilon, e, ""});
      AddTransition(x, {Type::kEpsilon, b, ""});
      return {a, b};
    }
    case Kind::kPlus: {
      NfaStateId a = AddState(), b = AddState();
      auto [e, x] = Build(*expr.children()[0]);
      AddTransition(a, {Type::kEpsilon, e, ""});
      AddTransition(x, {Type::kEpsilon, e, ""});
      AddTransition(x, {Type::kEpsilon, b, ""});
      return {a, b};
    }
    case Kind::kOptional: {
      NfaStateId a = AddState(), b = AddState();
      auto [e, x] = Build(*expr.children()[0]);
      AddTransition(a, {Type::kEpsilon, e, ""});
      AddTransition(a, {Type::kEpsilon, b, ""});
      AddTransition(x, {Type::kEpsilon, b, ""});
      return {a, b};
    }
  }
  NfaStateId a = AddState();
  return {a, a};
}

Nfa Nfa::Compile(const RpqExpr& expr) {
  Nfa nfa;
  auto [entry, exit] = nfa.Build(expr);
  nfa.start_ = entry;
  nfa.accept_ = exit;
  return nfa;
}

bool Nfa::AcceptsFromViaEpsilon(NfaStateId s) const {
  for (NfaStateId q : EpsilonClosure(s)) {
    if (q == accept_) return true;
  }
  return false;
}

std::vector<NfaStateId> Nfa::EpsilonClosure(NfaStateId s) const {
  std::vector<bool> seen(num_states(), false);
  std::vector<NfaStateId> closure;
  std::deque<NfaStateId> queue{s};
  seen[s] = true;
  while (!queue.empty()) {
    const NfaStateId q = queue.front();
    queue.pop_front();
    closure.push_back(q);
    for (const auto& t : transitions_[q]) {
      if (t.type == NfaTransition::Type::kEpsilon && !seen[t.target]) {
        seen[t.target] = true;
        queue.push_back(t.target);
      }
    }
  }
  return closure;
}

Nfa Nfa::Reversed() const {
  Nfa rev;
  rev.transitions_.resize(num_states());
  for (NfaStateId s = 0; s < num_states(); ++s) {
    for (const auto& t : transitions_[s]) {
      rev.transitions_[t.target].push_back(
          NfaTransition{t.type, s, t.label});
    }
  }
  rev.start_ = accept_;
  rev.accept_ = start_;
  return rev;
}

std::string Nfa::ToString() const {
  std::ostringstream out;
  out << "NFA(start=" << start_ << ", accept=" << accept_ << ")\n";
  for (NfaStateId s = 0; s < num_states(); ++s) {
    for (const auto& t : transitions_[s]) {
      out << "  " << s << " -";
      switch (t.type) {
        case NfaTransition::Type::kEpsilon:
          out << "eps";
          break;
        case NfaTransition::Type::kAnyEdge:
          out << "_";
          break;
        case NfaTransition::Type::kEdgeForward:
          out << ":" << t.label;
          break;
        case NfaTransition::Type::kEdgeBackward:
          out << ":" << t.label << "^";
          break;
        case NfaTransition::Type::kNodeTest:
          out << "!" << t.label;
          break;
        case NfaTransition::Type::kViewRef:
          out << "~" << t.label;
          break;
      }
      out << "-> " << t.target << "\n";
    }
  }
  return out.str();
}

}  // namespace gcore
