// Plain single-source shortest paths over a PPG (no regex): classic BFS /
// Dijkstra utilities.
//
// Used by examples, benchmarks and as the simple substrate the product
// search specializes. Edge weights come from a caller-supplied functional
// so property-derived weights (e.g. 1/(1+nr_messages)) are possible
// without coupling to the evaluator.
#ifndef GCORE_PATHS_DIJKSTRA_H_
#define GCORE_PATHS_DIJKSTRA_H_

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/result.h"
#include "graph/adjacency.h"

namespace gcore {

/// Weight of traversing `edge` in the given direction, or nullopt when the
/// traversal is not allowed.
using EdgeWeightFn =
    std::function<std::optional<double>(EdgeId edge, bool forward)>;

/// Result of a single-source run; indexed by dense node index.
struct SsspResult {
  static constexpr double kUnreachable =
      std::numeric_limits<double>::infinity();
  std::vector<double> distance;   // kUnreachable when not reached
  std::vector<int64_t> parent;    // dense parent node, -1 for source/unreached
  std::vector<EdgeId> parent_edge;

  bool Reached(DenseNodeIndex n) const {
    return distance[n] != kUnreachable;
  }
};

/// Unit-weight BFS over all edges (both directions optional).
SsspResult BfsFrom(const AdjacencyIndex& adj, NodeId src,
                   bool follow_forward = true, bool follow_backward = false);

/// Dijkstra with per-edge weights; negative weights are an error. Parents
/// are canonical: at equal distance (over positive-weight edges) the
/// lexicographically smallest (parent, edge id) pair wins, the same rule
/// DeltaSsspFrom (delta_stepping.h) applies — this function is that
/// kernel's executable spec.
Result<SsspResult> DijkstraFrom(const AdjacencyIndex& adj, NodeId src,
                                const EdgeWeightFn& weight,
                                bool follow_forward = true,
                                bool follow_backward = false);

/// Reconstructs the node/edge walk from `src` to `dst` out of an SSSP
/// result; nullopt when unreached.
std::optional<PathBody> ReconstructWalk(const AdjacencyIndex& adj,
                                        const SsspResult& sssp, NodeId src,
                                        NodeId dst);

}  // namespace gcore

#endif  // GCORE_PATHS_DIJKSTRA_H_
