#include "paths/dijkstra.h"

#include <algorithm>
#include <deque>
#include <queue>

namespace gcore {

namespace {

SsspResult MakeResult(size_t n) {
  SsspResult r;
  r.distance.assign(n, SsspResult::kUnreachable);
  r.parent.assign(n, -1);
  r.parent_edge.assign(n, EdgeId());
  return r;
}

}  // namespace

SsspResult BfsFrom(const AdjacencyIndex& adj, NodeId src, bool follow_forward,
                   bool follow_backward) {
  SsspResult r = MakeResult(adj.num_nodes());
  const DenseNodeIndex s = adj.IndexOf(src);
  r.distance[s] = 0.0;
  std::deque<DenseNodeIndex> queue{s};
  while (!queue.empty()) {
    const DenseNodeIndex n = queue.front();
    queue.pop_front();
    auto visit = [&](const AdjacencyEntry* begin, const AdjacencyEntry* end) {
      for (const AdjacencyEntry* e = begin; e != end; ++e) {
        if (r.distance[e->neighbor] != SsspResult::kUnreachable) continue;
        r.distance[e->neighbor] = r.distance[n] + 1.0;
        r.parent[e->neighbor] = n;
        r.parent_edge[e->neighbor] = e->edge;
        queue.push_back(e->neighbor);
      }
    };
    if (follow_forward) {
      auto [b, e] = adj.Out(n);
      visit(b, e);
    }
    if (follow_backward) {
      auto [b, e] = adj.In(n);
      visit(b, e);
    }
  }
  return r;
}

Result<SsspResult> DijkstraFrom(const AdjacencyIndex& adj, NodeId src,
                                const EdgeWeightFn& weight,
                                bool follow_forward, bool follow_backward) {
  SsspResult r = MakeResult(adj.num_nodes());
  const DenseNodeIndex s = adj.IndexOf(src);
  r.distance[s] = 0.0;

  using Entry = std::pair<double, DenseNodeIndex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.emplace(0.0, s);
  std::vector<bool> settled(adj.num_nodes(), false);

  Status error = Status::OK();
  while (!heap.empty()) {
    auto [dist, n] = heap.top();
    heap.pop();
    if (settled[n]) continue;
    settled[n] = true;

    auto visit = [&](const AdjacencyEntry* begin, const AdjacencyEntry* end) {
      for (const AdjacencyEntry* e = begin; e != end; ++e) {
        std::optional<double> w = weight(e->edge, e->forward);
        if (!w.has_value()) continue;
        if (*w < 0.0) {
          error = Status::EvaluationError(
              "Dijkstra requires non-negative edge weights");
          return;
        }
        const double nd = dist + *w;
        if (nd < r.distance[e->neighbor]) {
          r.distance[e->neighbor] = nd;
          r.parent[e->neighbor] = n;
          r.parent_edge[e->neighbor] = e->edge;
          heap.emplace(nd, e->neighbor);
        } else if (nd == r.distance[e->neighbor] && *w > 0.0 &&
                   r.parent[e->neighbor] >= 0 &&
                   (static_cast<int64_t>(n) < r.parent[e->neighbor] ||
                    (static_cast<int64_t>(n) == r.parent[e->neighbor] &&
                     e->edge < r.parent_edge[e->neighbor]))) {
          // Canonical tiebreak: at equal distance, prefer the smallest
          // (parent, edge) pair — the fixed lexicographic criterion of
          // Appendix A.1 footnote 4, and the rule the parallel
          // delta-stepping kernel applies, so serial and parallel SSSP
          // agree on the whole parent forest, not just distances.
          // Positive weight only: such a parent is strictly closer, so
          // the forest stays acyclic (a zero-weight tie parent need not
          // be).
          r.parent[e->neighbor] = n;
          r.parent_edge[e->neighbor] = e->edge;
        }
      }
    };
    if (follow_forward) {
      auto [b, e] = adj.Out(n);
      visit(b, e);
    }
    if (!error.ok()) return error;
    if (follow_backward) {
      auto [b, e] = adj.In(n);
      visit(b, e);
    }
    if (!error.ok()) return error;
  }
  return r;
}

std::optional<PathBody> ReconstructWalk(const AdjacencyIndex& adj,
                                        const SsspResult& sssp, NodeId src,
                                        NodeId dst) {
  const DenseNodeIndex s = adj.IndexOf(src);
  const DenseNodeIndex d = adj.IndexOf(dst);
  if (!sssp.Reached(d)) return std::nullopt;
  PathBody body;
  DenseNodeIndex cur = d;
  while (cur != s) {
    body.nodes.push_back(adj.IdOf(cur));
    body.edges.push_back(sssp.parent_edge[cur]);
    cur = static_cast<DenseNodeIndex>(sssp.parent[cur]);
  }
  body.nodes.push_back(adj.IdOf(s));
  std::reverse(body.nodes.begin(), body.nodes.end());
  std::reverse(body.edges.begin(), body.edges.end());
  return body;
}

}  // namespace gcore
