#include "paths/all_paths.h"

#include <deque>

#include "graph/snapshot.h"
#include "paths/frontier.h"
#include "paths/product_bfs.h"

namespace gcore {

namespace {

/// Backward product reachability: marks (node, state) pairs from which
/// (dst, accept) is reachable. Implemented as forward reachability over
/// the reversed NFA with flipped edge-direction semantics; view segments
/// are consumed dst-to-src through a ViewBackIndex instead of rescanning
/// AllSegments per visited node.
Status BackwardProductReachability(const PathSearchContext& ctx, NodeId dst,
                                   std::vector<bool>* marks) {
  const Nfa rev = ctx.nfa->Reversed();
  const CompiledNfa nfa(rev, *ctx.adj, ctx.snap);
  const size_t num_states = nfa.num_states();
  marks->assign(ctx.adj->num_nodes() * num_states, false);

  std::deque<std::pair<DenseNodeIndex, NfaStateId>> queue;
  auto push = [&](DenseNodeIndex n, NfaStateId q) {
    const size_t idx = static_cast<size_t>(n) * num_states + q;
    if ((*marks)[idx]) return;
    (*marks)[idx] = true;
    queue.emplace_back(n, q);
  };
  push(ctx.adj->IndexOf(dst), rev.start());  // rev.start == original accept

  ViewBackIndex back_index;
  while (!queue.empty()) {
    auto [n, q] = queue.front();
    queue.pop_front();

    for (const CompiledTransition& t : nfa.TransitionsFrom(q)) {
      switch (t.type) {
        case NfaTransition::Type::kEpsilon:
          push(n, t.target);
          break;
        case NfaTransition::Type::kNodeTest:
          if (nfa.NodeAdmitted(t, n)) push(n, t.target);
          break;
        case NfaTransition::Type::kAnyEdge:
        case NfaTransition::Type::kEdgeForward:
        case NfaTransition::Type::kEdgeBackward: {
          // Walking backwards: a forward-label transition was taken along
          // an edge *into* the current node, so scan In(); a backward-label
          // transition scans Out().
          auto try_entries = [&](const AdjacencyEntry* begin,
                                 const AdjacencyEntry* end) {
            for (const AdjacencyEntry* e = begin; e != end; ++e) {
              if (nfa.EdgeAdmitted(t, *e)) push(e->neighbor, t.target);
            }
          };
          if (t.type != NfaTransition::Type::kEdgeBackward) {
            auto [b, e] = ctx.adj->In(n);
            try_entries(b, e);
          }
          if (t.type != NfaTransition::Type::kEdgeForward) {
            auto [b, e] = ctx.adj->Out(n);
            try_entries(b, e);
          }
          break;
        }
        case NfaTransition::Type::kViewRef: {
          if (ctx.views == nullptr) {
            return Status::EvaluationError(
                "regex references PATH view '~" + *t.label +
                "' but no views are in scope");
          }
          auto rel = ctx.views->Lookup(*t.label);
          if (!rel.ok()) return rel.status();
          for (const PathViewSegment* seg :
               back_index.SegmentsInto(**rel, ctx.adj->IdOf(n))) {
            if (!ctx.adj->Contains(seg->src)) continue;
            push(ctx.adj->IndexOf(seg->src), t.target);
          }
          break;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<PathProjection> AllPathsProjection(const PathSearchContext& ctx,
                                          NodeId src, NodeId dst) {
  if (ctx.adj == nullptr || ctx.nfa == nullptr) {
    return Status::InvalidArgument("path search context is incomplete");
  }
  if (!ctx.adj->Contains(src) || !ctx.adj->Contains(dst)) {
    return Status::InvalidArgument("endpoints are not in the graph");
  }

  std::vector<bool> fwd;
  GCORE_RETURN_NOT_OK(ProductReachability(ctx, src, &fwd));
  std::vector<bool> bwd;
  GCORE_RETURN_NOT_OK(BackwardProductReachability(ctx, dst, &bwd));

  const CompiledNfa nfa(*ctx.nfa, *ctx.adj, ctx.snap);
  const size_t num_states = nfa.num_states();
  auto useful = [&](DenseNodeIndex n, NfaStateId q) {
    const size_t idx = static_cast<size_t>(n) * num_states + q;
    return fwd[idx] && bwd[idx];
  };

  PathProjection out;

  // An edge participates in a conforming walk iff some edge transition
  // (v, q) -> (u, q') crosses it with (v, q) forward-reachable and
  // (u, q') backward-reachable.
  for (size_t ni = 0; ni < ctx.adj->num_nodes(); ++ni) {
    const DenseNodeIndex n = static_cast<DenseNodeIndex>(ni);
    const NodeId here = ctx.adj->IdOf(n);
    for (NfaStateId q = 0; q < num_states; ++q) {
      if (!fwd[ni * num_states + q]) continue;
      for (const CompiledTransition& t : nfa.TransitionsFrom(q)) {
        switch (t.type) {
          case NfaTransition::Type::kEpsilon:
            if (bwd[ni * num_states + t.target] && useful(n, q)) {
              out.nodes.insert(here);
            }
            break;
          case NfaTransition::Type::kNodeTest:
            if (nfa.NodeAdmitted(t, n) && bwd[ni * num_states + t.target]) {
              out.nodes.insert(here);
            }
            break;
          case NfaTransition::Type::kAnyEdge:
          case NfaTransition::Type::kEdgeForward:
          case NfaTransition::Type::kEdgeBackward: {
            auto try_entries = [&](const AdjacencyEntry* begin,
                                   const AdjacencyEntry* end) {
              for (const AdjacencyEntry* e = begin; e != end; ++e) {
                if (!nfa.EdgeAdmitted(t, *e)) continue;
                if (!bwd[static_cast<size_t>(e->neighbor) * num_states +
                         t.target]) {
                  continue;
                }
                out.edges.insert(e->edge);
                out.nodes.insert(here);
                out.nodes.insert(ctx.adj->IdOf(e->neighbor));
              }
            };
            if (t.type != NfaTransition::Type::kEdgeBackward) {
              auto [b, e] = ctx.adj->Out(n);
              try_entries(b, e);
            }
            if (t.type != NfaTransition::Type::kEdgeForward) {
              auto [b, e] = ctx.adj->In(n);
              try_entries(b, e);
            }
            break;
          }
          case NfaTransition::Type::kViewRef: {
            if (ctx.views == nullptr) break;
            auto rel = ctx.views->Lookup(*t.label);
            if (!rel.ok()) break;
            for (const PathViewSegment& seg : (*rel)->SegmentsFrom(here)) {
              if (!ctx.adj->Contains(seg.dst)) continue;
              if (!bwd[static_cast<size_t>(ctx.adj->IndexOf(seg.dst)) *
                           num_states +
                       t.target]) {
                continue;
              }
              out.nodes.insert(seg.body.nodes.begin(), seg.body.nodes.end());
              out.edges.insert(seg.body.edges.begin(), seg.body.edges.end());
            }
            break;
          }
        }
      }
    }
  }

  // The endpoints themselves participate when any walk exists at all —
  // read off the forward sweep directly instead of a third traversal.
  const bool reachable =
      fwd[static_cast<size_t>(ctx.adj->IndexOf(dst)) * num_states +
          ctx.nfa->accept()];
  if (reachable) {
    out.nodes.insert(src);
    out.nodes.insert(dst);
  } else {
    out.nodes.clear();
    out.edges.clear();
  }
  return out;
}

}  // namespace gcore
