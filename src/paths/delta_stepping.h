// Delta-stepping parallel SSSP / K-SSSP kernels (Meyer & Sanders) over
// the CSR adjacency, plus the PATH-view specialization behind the
// engine's `<~w*>` weighted-shortest fast path.
//
// Shape: distances are kept in buckets of width Δ; one bucket at a time
// is relaxed to a fixpoint, with the frontier's edge scans fanned onto
// worker threads that emit relaxation candidates into per-slice buffers.
// A coordinator merges the buffers serially under the canonical
// acceptance rule, so the result is a pure function of the input at
// every parallelism degree:
//
//   * a candidate with a strictly smaller distance always wins;
//   * at equal distance (and strictly positive edge weight), the parent
//     with the lexicographically smallest (parent node, edge id) pair
//     wins — the paper's "fixed lexicographical order" tiebreak
//     (Appendix A.1, footnote 4), the same rule the serial binary-heap
//     DijkstraFrom applies, so delta ≡ heap on distances *and* parents.
//     (Zero-weight ties keep exact distances but leave the parent choice
//     to discovery order — a positive-weight tie parent is provably
//     cycle-free, a zero-weight one is not.)
//
// DijkstraFrom (dijkstra.h) stays the executable spec: graphs below
// ParallelSsspOptions::serial_cutoff take it verbatim, and the
// differential suite (tests/paths/parallel_paths_test.cc) pins the
// kernels against it at parallelism 1/2/8.
#ifndef GCORE_PATHS_DELTA_STEPPING_H_
#define GCORE_PATHS_DELTA_STEPPING_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/result.h"
#include "graph/snapshot.h"
#include "paths/dijkstra.h"
#include "paths/path_view.h"

namespace gcore {

/// Weight of traversing one half-edge. Entry-keyed (unlike EdgeWeightFn)
/// so snapshot weight columns can be read by dense index without a
/// per-edge binary search.
using DenseEdgeWeightFn =
    std::function<std::optional<double>(const AdjacencyEntry&)>;

/// Adapts an id-keyed EdgeWeightFn (the DijkstraFrom signature).
DenseEdgeWeightFn WrapWeightFn(EdgeWeightFn fn);

/// The `x.w`-cost fast path: weights straight from a snapshot edge
/// column via AdjacencyEntry::edge_dense — one kind byte and one slot
/// read per half-edge.
DenseEdgeWeightFn SnapshotWeightFn(GraphSnapshot::EdgeWeightView weights);

/// Tuning knobs of the parallel kernels.
struct ParallelSsspOptions {
  /// Worker threads for frontier edge scans; 0 = hardware concurrency.
  size_t parallelism = 1;
  /// Bucket width; 0 = auto (mean sampled edge weight).
  double delta = 0.0;
  /// Below this many nodes the serial heap runs instead (bucket overhead
  /// exceeds the win); 0 disables the fallback (differential tests).
  size_t serial_cutoff = 2048;
};

/// Delta-stepping single-source shortest paths. Result-identical to
/// DijkstraFrom for strictly positive weights (see header comment);
/// negative weights are an error.
Result<SsspResult> DeltaSsspFrom(const AdjacencyIndex& adj, NodeId src,
                                 const DenseEdgeWeightFn& weight,
                                 const ParallelSsspOptions& opts = {},
                                 bool follow_forward = true,
                                 bool follow_backward = false);

/// K-SSSP: the k cheapest walk costs per node, ascending, with walk
/// multiplicity (two distinct walks of equal cost occupy two slots) —
/// the katana K_SSSP contract. Indexed by dense node index.
using KSsspDistances = std::vector<std::vector<double>>;

/// Serial executable spec: binary-heap label-correcting search popping at
/// most k labels per node.
Result<KSsspDistances> KSsspHeapFrom(const AdjacencyIndex& adj, NodeId src,
                                     const DenseEdgeWeightFn& weight,
                                     size_t k, bool follow_forward = true,
                                     bool follow_backward = false);

/// Bucketed parallel K-SSSP; value-identical to KSsspHeapFrom.
Result<KSsspDistances> DeltaKSsspFrom(const AdjacencyIndex& adj, NodeId src,
                                      const DenseEdgeWeightFn& weight,
                                      size_t k,
                                      const ParallelSsspOptions& opts = {},
                                      bool follow_forward = true,
                                      bool follow_backward = false);

/// SSSP over the segment graph of one PATH view — the `<~w*>` regex
/// shape, where the graph × NFA product degenerates to a plain weighted
/// graph whose edges are view segments (cost > 0 enforced at view
/// construction, so parents are fully canonical).
struct ViewSsspResult {
  std::vector<double> distance;  // SsspResult::kUnreachable when not reached
  std::vector<int64_t> parent;   // dense parent node, -1 for source/unreached
  std::vector<const PathViewSegment*> parent_seg;  // borrowed from the view
  bool Reached(DenseNodeIndex n) const {
    return distance[n] != SsspResult::kUnreachable;
  }
};

Result<ViewSsspResult> ViewStarSssp(const AdjacencyIndex& adj,
                                    const PathViewRelation& view, NodeId src,
                                    const ParallelSsspOptions& opts = {});

/// Concatenates the parent segment chain into the walk from `src` to
/// `dst`; nullopt when unreached. dst == src yields the empty walk.
std::optional<PathBody> ReconstructViewWalk(const AdjacencyIndex& adj,
                                            const ViewSsspResult& sssp,
                                            NodeId src, NodeId dst);

}  // namespace gcore

#endif  // GCORE_PATHS_DELTA_STEPPING_H_
