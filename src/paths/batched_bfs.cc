#include "paths/batched_bfs.h"

#include <algorithm>
#include <deque>

#include "graph/snapshot.h"
#include "paths/frontier.h"

namespace gcore {

namespace {

/// One wave: product reachability for up to 64 sources at once. Each
/// product state (node, nfa-state) carries the mask of wave sources that
/// reach it; propagation is a monotone bitwise-OR fixpoint, so the result
/// is order-independent and one traversal serves the whole wave.
Status RunWave(const PathSearchContext& ctx, const CompiledNfa& nfa,
               const NodeId* sources, size_t count,
               std::set<NodeId>* out_sets) {
  const AdjacencyIndex& adj = *ctx.adj;
  const size_t num_states = nfa.num_states();
  std::vector<uint64_t> masks(adj.num_nodes() * num_states, 0);
  std::deque<size_t> worklist;
  std::vector<bool> queued(masks.size(), false);

  auto merge = [&](size_t idx, uint64_t add) {
    add &= ~masks[idx];
    if (add == 0) return;
    masks[idx] |= add;
    if (!queued[idx]) {
      queued[idx] = true;
      worklist.push_back(idx);
    }
  };

  for (size_t i = 0; i < count; ++i) {
    merge(static_cast<size_t>(adj.IndexOf(sources[i])) * num_states +
              nfa.start(),
          uint64_t{1} << i);
  }

  // Per-wave view cache: resolved once per distinct view name.
  std::map<std::string, const PathViewRelation*> view_cache;

  while (!worklist.empty()) {
    const size_t p = worklist.front();
    worklist.pop_front();
    queued[p] = false;
    const uint64_t m = masks[p];  // current mask, not the enqueue-time one
    const DenseNodeIndex n = static_cast<DenseNodeIndex>(p / num_states);
    const NfaStateId q = static_cast<NfaStateId>(p % num_states);

    for (const CompiledTransition& t : nfa.TransitionsFrom(q)) {
      switch (t.type) {
        case NfaTransition::Type::kEpsilon:
          merge(static_cast<size_t>(n) * num_states + t.target, m);
          break;
        case NfaTransition::Type::kNodeTest:
          if (nfa.NodeAdmitted(t, n)) {
            merge(static_cast<size_t>(n) * num_states + t.target, m);
          }
          break;
        case NfaTransition::Type::kAnyEdge:
        case NfaTransition::Type::kEdgeForward:
        case NfaTransition::Type::kEdgeBackward: {
          auto try_entries = [&](const AdjacencyEntry* begin,
                                 const AdjacencyEntry* end) {
            for (const AdjacencyEntry* e = begin; e != end; ++e) {
              if (!nfa.EdgeAdmitted(t, *e)) continue;
              merge(static_cast<size_t>(e->neighbor) * num_states + t.target,
                    m);
            }
          };
          if (t.type != NfaTransition::Type::kEdgeBackward) {
            auto [b, e] = adj.Out(n);
            try_entries(b, e);
          }
          if (t.type != NfaTransition::Type::kEdgeForward) {
            auto [b, e] = adj.In(n);
            try_entries(b, e);
          }
          break;
        }
        case NfaTransition::Type::kViewRef: {
          auto [it, inserted] = view_cache.try_emplace(*t.label, nullptr);
          if (inserted) {
            if (ctx.views == nullptr) {
              return Status::EvaluationError(
                  "regex references PATH view '~" + *t.label +
                  "' but no views are in scope");
            }
            auto rel = ctx.views->Lookup(*t.label);
            if (!rel.ok()) return rel.status();
            it->second = *rel;
          }
          for (const PathViewSegment& seg :
               it->second->SegmentsFrom(adj.IdOf(n))) {
            if (!adj.Contains(seg.dst)) continue;
            merge(static_cast<size_t>(adj.IndexOf(seg.dst)) * num_states +
                      t.target,
                  m);
          }
          break;
        }
      }
    }
  }

  // Dense indices ascend with node id, so end-hinted insertion keeps the
  // materialization linear in the output size.
  const NfaStateId accept = nfa.accept();
  for (size_t n = 0; n < adj.num_nodes(); ++n) {
    uint64_t m = masks[n * num_states + accept];
    if (m == 0) continue;
    const NodeId id = adj.IdOf(static_cast<DenseNodeIndex>(n));
    while (m != 0) {
      const size_t i = static_cast<size_t>(__builtin_ctzll(m));
      m &= m - 1;
      out_sets[i].emplace_hint(out_sets[i].end(), id);
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::set<NodeId>>> BatchedReachableFrom(
    const PathSearchContext& ctx, const std::vector<NodeId>& sources) {
  if (ctx.adj == nullptr || ctx.nfa == nullptr) {
    return Status::InvalidArgument("path search context is incomplete");
  }
  for (NodeId src : sources) {
    if (!ctx.adj->Contains(src)) {
      return Status::InvalidArgument("source node is not in the graph");
    }
  }
  std::vector<std::set<NodeId>> out(sources.size());
  if (sources.empty()) return out;

  const CompiledNfa nfa(*ctx.nfa, *ctx.adj, ctx.snap);
  const size_t num_waves = (sources.size() + 63) / 64;
  std::vector<Status> wave_status(num_waves, Status::OK());
  ParallelFor(ctx.parallelism, num_waves, [&](size_t w) {
    const size_t lo = w * 64;
    const size_t count = std::min<size_t>(64, sources.size() - lo);
    wave_status[w] = RunWave(ctx, nfa, sources.data() + lo, count, &out[lo]);
  });
  for (const Status& st : wave_status) {
    if (!st.ok()) return st;
  }
  return out;
}

Result<std::vector<std::map<NodeId, std::vector<FoundPath>>>>
BatchedKShortestFrom(const PathSearchContext& ctx,
                     const std::vector<NodeId>& sources, size_t k) {
  std::vector<std::map<NodeId, std::vector<FoundPath>>> out(sources.size());
  std::vector<Status> status(sources.size(), Status::OK());
  ParallelFor(ctx.parallelism, sources.size(), [&](size_t i) {
    auto r = KShortestPathsFrom(ctx, sources[i], k);
    if (r.ok()) {
      out[i] = std::move(*r);
    } else {
      status[i] = r.status();
    }
  });
  for (const Status& st : status) {
    if (!st.ok()) return st;
  }
  return out;
}

}  // namespace gcore
