#include "paths/path_view.h"

namespace gcore {

namespace {
const std::vector<PathViewSegment> kNoSegments;
}  // namespace

Status PathViewRelation::AddSegment(PathViewSegment segment) {
  if (!(segment.cost > 0.0)) {
    return Status::EvaluationError(
        "PATH view '" + name_ + "': segment cost must be numerical and > 0 " +
        "(got " + std::to_string(segment.cost) + ")");
  }
  if (segment.body.nodes.empty() || segment.body.nodes.front() != segment.src ||
      segment.body.nodes.back() != segment.dst) {
    return Status::InvalidArgument("PATH view '" + name_ +
                                   "': segment body endpoints mismatch");
  }
  by_src_[segment.src].push_back(segment);
  segments_.push_back(std::move(segment));
  return Status::OK();
}

const std::vector<PathViewSegment>& PathViewRelation::SegmentsFrom(
    NodeId src) const {
  auto it = by_src_.find(src);
  return it == by_src_.end() ? kNoSegments : it->second;
}

void PathViewRegistry::Register(PathViewRelation relation) {
  std::string name = relation.name();
  relations_.insert_or_assign(std::move(name), std::move(relation));
}

Result<const PathViewRelation*> PathViewRegistry::Lookup(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("PATH view '" + name + "' is not defined");
  }
  return &it->second;
}

bool PathViewRegistry::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

}  // namespace gcore
