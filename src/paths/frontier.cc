#include "paths/frontier.h"

#include <atomic>
#include <thread>

namespace gcore {

size_t ResolveParallelism(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ParallelFor(size_t parallelism, size_t n,
                 const std::function<void(size_t)>& fn) {
  const size_t degree = std::min(ResolveParallelism(parallelism), n);
  if (degree <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(degree - 1);
  for (size_t t = 0; t + 1 < degree; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
}

CompiledNfa::CompiledNfa(const Nfa& nfa, const AdjacencyIndex& adj,
                         const GraphSnapshot* snap)
    : adj_(&adj), snap_(snap), start_(nfa.start()), accept_(nfa.accept()) {
  states_.resize(nfa.num_states());
  for (NfaStateId s = 0; s < nfa.num_states(); ++s) {
    const auto& transitions = nfa.TransitionsFrom(s);
    states_[s].reserve(transitions.size());
    for (const NfaTransition& t : transitions) {
      CompiledTransition ct;
      ct.type = t.type;
      ct.target = t.target;
      ct.label = &t.label;
      if (snap_ != nullptr && (t.type == NfaTransition::Type::kEdgeForward ||
                               t.type == NfaTransition::Type::kEdgeBackward ||
                               t.type == NfaTransition::Type::kNodeTest)) {
        ct.label_id = snap_->LabelId(t.label);
      }
      states_[s].push_back(ct);
    }
  }
}

const std::vector<const PathViewSegment*>& ViewBackIndex::SegmentsInto(
    const PathViewRelation& rel, NodeId dst) {
  auto [it, inserted] = by_rel_.try_emplace(&rel);
  if (inserted) {
    for (const PathViewSegment& seg : rel.AllSegments()) {
      it->second[seg.dst].push_back(&seg);
    }
  }
  static const std::vector<const PathViewSegment*> kEmpty;
  auto hit = it->second.find(dst);
  return hit == it->second.end() ? kEmpty : hit->second;
}

}  // namespace gcore
