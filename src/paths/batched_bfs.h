// Batched multi-source traversal over the graph × NFA product.
//
// PathSearchOp used to launch one independent product-BFS per input row;
// rows sharing a source repeated identical work, and rows with distinct
// sources re-walked the same hot region once each. These kernels take the
// whole distinct-source batch at once:
//
//   * BatchedReachableFrom — unweighted reachability for up to 64 sources
//     per traversal: each product state carries a 64-bit source mask, one
//     monotone mask-propagation fixpoint replaces 64 BFS sweeps (the
//     classic MS-BFS idea of Then et al., specialized to the product
//     graph). Larger batches run as waves of 64, fanned across workers.
//
//   * BatchedKShortestFrom — weighted/k-shortest searches keep their
//     per-source product-Dijkstra (costs don't compose across sources),
//     but the batch fans sources across workers, each writing its own
//     result slot.
//
// Both are deterministic at every parallelism degree: wave/source slots
// are pre-assigned, and the mask fixpoint is confluent (the final mask
// array is the unique least fixpoint, independent of propagation order).
#ifndef GCORE_PATHS_BATCHED_BFS_H_
#define GCORE_PATHS_BATCHED_BFS_H_

#include <map>
#include <set>
#include <vector>

#include "common/result.h"
#include "paths/k_shortest.h"

namespace gcore {

/// Reachable-node set per source (same order as `sources`): the batched
/// equivalent of calling ReachableFrom once per source. Sources may
/// repeat; every source must be in the graph.
Result<std::vector<std::set<NodeId>>> BatchedReachableFrom(
    const PathSearchContext& ctx, const std::vector<NodeId>& sources);

/// KShortestPathsFrom for every source (same order as `sources`), fanned
/// across ctx.parallelism workers. Errors surface in source order.
Result<std::vector<std::map<NodeId, std::vector<FoundPath>>>>
BatchedKShortestFrom(const PathSearchContext& ctx,
                     const std::vector<NodeId>& sources, size_t k);

}  // namespace gcore

#endif  // GCORE_PATHS_BATCHED_BFS_H_
