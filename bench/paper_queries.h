// The paper's example queries as executable text, shared by benches and
// the Table 1 report. Line numbers refer to the paper's listing.
#ifndef GCORE_BENCH_PAPER_QUERIES_H_
#define GCORE_BENCH_PAPER_QUERIES_H_

namespace gcore {
namespace bench {

struct PaperQuery {
  const char* id;     // experiment id (EXPERIMENTS.md)
  const char* lines;  // paper listing lines
  const char* text;
};

inline constexpr PaperQuery kPaperQueries[] = {
    {"Q1", "1-4",
     "CONSTRUCT (n) MATCH (n:Person) ON social_graph "
     "WHERE n.employer = 'Acme'"},
    {"Q2", "5-9",
     "CONSTRUCT (c)<-[:worksAt]-(n) "
     "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
     "WHERE c.name = n.employer UNION social_graph"},
    {"Q3", "10-14",
     "CONSTRUCT (c)<-[:worksAt]-(n) "
     "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
     "WHERE c.name IN n.employer UNION social_graph"},
    {"Q4", "15-19",
     "CONSTRUCT (c)<-[:worksAt]-(n) "
     "MATCH (c:Company) ON company_graph, "
     "(n:Person {employer=e}) ON social_graph "
     "WHERE c.name = e UNION social_graph"},
    {"Q5", "20-22",
     "CONSTRUCT social_graph, "
     "(x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
     "MATCH (n:Person {employer=e})"},
    {"Q6", "23-27",
     "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
     "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
     "WHERE (n:Person) AND (m:Person) "
     "AND n.firstName = 'John' AND n.lastName = 'Doe' "
     "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"},
    {"Q7", "28-31",
     "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
     "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
     "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"},
    {"Q8", "32-35",
     "CONSTRUCT (n)-/p/->(m) "
     "MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
     "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
     "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"},
    {"Q9", "36-38",
     "CONSTRUCT (m) MATCH (m:Person), (n:Person) "
     "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
     "AND EXISTS ( CONSTRUCT () "
     "MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )"},
    {"Q10", "39-47",
     "GRAPH VIEW social_graph1 AS ( "
     "CONSTRUCT social_graph, (n)-[e]->(m) SET e.nr_messages := COUNT(*) "
     "MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) "
     "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2), "
     "(msg2:Post|Comment)-[c2]->(m) "
     "WHERE (c1:has_creator) AND (c2:has_creator) )"},
    {"Q11", "57-66",
     "GRAPH VIEW social_graph2 AS ( "
     "PATH wKnows = (x)-[e:knows]->(y) "
     "WHERE NOT 'Acme' IN y.employer "
     "COST 1 / (1 + e.nr_messages) "
     "CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) "
     "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON social_graph1 "
     "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}) "
     "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) "
     "AND n.firstName = 'John' AND n.lastName = 'Doe')"},
    {"Q12", "67-71",
     "CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) "
     "WHEN e.score > 0 "
     "MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 "
     "WHERE m = nodes(p)[1]"},
    {"SELECT", "72-75",
     "SELECT m.lastName + ', ' + m.firstName AS friendName "
     "MATCH (n:Person)-/<:knows*>/->(m:Person) "
     "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
     "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"},
    {"FROM", "76-80",
     "CONSTRUCT (cust GROUP custName :Customer {name:=custName}), "
     "(prod GROUP prodCode :Product {code:=prodCode}), "
     "(cust)-[:bought]->(prod) FROM orders"},
    {"ON-TABLE", "81-85",
     "CONSTRUCT (cust GROUP o.custName :Customer {name:=o.custName}), "
     "(prod GROUP o.prodCode :Product {code:=o.prodCode}), "
     "(cust)-[:bought]->(prod) MATCH (o) ON orders"},
};

}  // namespace bench
}  // namespace gcore

#endif  // GCORE_BENCH_PAPER_QUERIES_H_
