// Columnar-Ω trajectory bench (scripts/run_bench.sh →
// BENCH_columnar_scan.json).
//
// Micro-benchmarks of the three hot binding-table primitives the
// column-major refactor targets — filter row-gather, edge-hop expansion
// and join key hashing — each in two variants:
//
//   *_Row       the seed's row-major behavior (vector<BindingRow>
//               storage, whole-row copies per surviving/emitted row),
//               reconstructed here so the layout is the only variable;
//   *_Columnar  the shipped columnar path (kind/slot arrays, typed
//               accessors, column-at-a-time gathers).
//
// The acceptance trajectory tracks the single-thread Row/Columnar ratio
// on the filter and expand workloads (target >= 1.3x).
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "baselines.h"
#include "eval/binding.h"
#include "graph/adjacency.h"
#include "graph/catalog.h"
#include "snb/generator.h"

namespace gcore {
namespace {

using bench::MaterializeRows;
using bench::SeedRows;

Datum N(uint64_t id) { return Datum::OfNode(NodeId(id)); }

/// Input relation: a dense node column, a second dense node column and a
/// heavy (singleton value-set) tag column — the shape intermediate
/// tables take after a couple of hops with a bound property.
void BuildScanInput(size_t rows, BindingTable* table) {
  *table = BindingTable({"n", "m", "tag"});
  table->ReserveRows(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    Status st = table->AddRow(
        {N(i), N(1000000 + i % 4096),
         Datum::OfValue(Value::String("t" + std::to_string(i % 7)))});
    (void)st;
  }
}

bool KeepRow(uint64_t node_id) { return node_id % 4 != 0; }

// --- filter: keep ~3/4 of the rows --------------------------------------------

void BM_ColumnarScan_FilterRow(benchmark::State& state) {
  BindingTable table;
  BuildScanInput(static_cast<size_t>(state.range(0)), &table);
  const SeedRows rows = MaterializeRows(table);
  size_t kept_rows = 0;
  for (auto _ : state) {
    SeedRows kept;
    kept.reserve(rows.size());
    for (const auto& row : rows) {
      if (KeepRow(row[0].node().value())) kept.push_back(row);
    }
    kept_rows = kept.size();
    benchmark::DoNotOptimize(kept);
  }
  state.counters["kept"] = static_cast<double>(kept_rows);
}
BENCHMARK(BM_ColumnarScan_FilterRow)->Arg(200000)->Unit(benchmark::kMillisecond);

void BM_ColumnarScan_FilterColumnar(benchmark::State& state) {
  BindingTable table;
  BuildScanInput(static_cast<size_t>(state.range(0)), &table);
  size_t kept_rows = 0;
  for (auto _ : state) {
    const Column& n = table.ColumnAt(0);
    std::vector<size_t> kept;
    kept.reserve(table.NumRows());
    for (size_t r = 0; r < table.NumRows(); ++r) {
      if (KeepRow(n.NodeAt(r).value())) kept.push_back(r);
    }
    BindingTable filtered(table.columns());
    filtered.AppendRowsFrom(table, kept);
    kept_rows = filtered.NumRows();
    benchmark::DoNotOptimize(filtered);
  }
  state.counters["kept"] = static_cast<double>(kept_rows);
}
BENCHMARK(BM_ColumnarScan_FilterColumnar)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

// --- expand: one knows-hop over a generated SNB graph -------------------------

struct ExpandFixture {
  GraphCatalog catalog;
  const PathPropertyGraph* graph = nullptr;
  std::unique_ptr<AdjacencyIndex> adj;
  BindingTable table;

  explicit ExpandFixture(size_t persons) {
    snb::GeneratorOptions options;
    options.num_persons = persons;
    options.avg_knows_degree = 10.0;
    catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
    graph = *catalog.Lookup("snb");
    adj = std::make_unique<AdjacencyIndex>(*graph);
    table = BindingTable({"n", "tag"});
    graph->ForEachNode([&](NodeId id) {
      Status st = table.AddRow(
          {N(id.value()),
           Datum::OfValue(Value::String("t" + std::to_string(id.value() % 7)))});
      (void)st;
    });
  }
};

void BM_ColumnarScan_ExpandRow(benchmark::State& state) {
  ExpandFixture fx(static_cast<size_t>(state.range(0)));
  const SeedRows rows = MaterializeRows(fx.table);
  size_t out_rows = 0;
  for (auto _ : state) {
    SeedRows out;
    for (const auto& row : rows) {
      const Datum& from = row[0];
      if (from.kind() != Datum::Kind::kNode) continue;
      if (!fx.adj->Contains(from.node())) continue;
      auto [b, e] = fx.adj->Out(fx.adj->IndexOf(from.node()));
      for (const AdjacencyEntry* it = b; it != e; ++it) {
        BindingRow next = row;
        next.resize(row.size() + 2);
        next[row.size()] = Datum::OfEdge(it->edge);
        next[row.size() + 1] = N(fx.adj->IdOf(it->neighbor).value());
        out.push_back(std::move(next));
      }
    }
    out_rows = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_ColumnarScan_ExpandRow)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_ColumnarScan_ExpandColumnar(benchmark::State& state) {
  ExpandFixture fx(static_cast<size_t>(state.range(0)));
  size_t out_rows = 0;
  for (auto _ : state) {
    BindingTable next(
        {fx.table.columns()[0], fx.table.columns()[1], "e", "m"});
    const Column& from = fx.table.ColumnAt(0);
    const size_t edge_col = 2, to_col = 3;
    for (size_t r = 0; r < fx.table.NumRows(); ++r) {
      if (from.KindAt(r) != Datum::Kind::kNode) continue;
      const NodeId src = from.NodeAt(r);
      if (!fx.adj->Contains(src)) continue;
      auto [b, e] = fx.adj->Out(fx.adj->IndexOf(src));
      for (const AdjacencyEntry* it = b; it != e; ++it) {
        next.AppendRowFrom(fx.table, r);
        next.SetCell(next.NumRows() - 1, edge_col, Datum::OfEdge(it->edge));
        next.SetCell(next.NumRows() - 1, to_col,
                     Datum::OfNode(fx.adj->IdOf(it->neighbor)));
      }
    }
    out_rows = next.NumRows();
    benchmark::DoNotOptimize(next);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_ColumnarScan_ExpandColumnar)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// --- join key hashing ---------------------------------------------------------

void BM_ColumnarScan_KeyHashRow(benchmark::State& state) {
  BindingTable table;
  BuildScanInput(static_cast<size_t>(state.range(0)), &table);
  const SeedRows rows = MaterializeRows(table);
  for (auto _ : state) {
    size_t acc = 0;
    for (const auto& row : rows) acc ^= HashRow(row);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ColumnarScan_KeyHashRow)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_ColumnarScan_KeyHashColumnar(benchmark::State& state) {
  BindingTable table;
  BuildScanInput(static_cast<size_t>(state.range(0)), &table);
  for (auto _ : state) {
    size_t acc = 0;
    for (size_t r = 0; r < table.NumRows(); ++r) acc ^= table.RowHash(r);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ColumnarScan_KeyHashColumnar)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
