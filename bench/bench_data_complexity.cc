// Data-complexity benchmark: the central claim of Section 4 is that every
// fixed G-CORE query evaluates in polynomial time in data size. We sweep
// the SNB generator (persons 100 → 6400, 4x steps) with fixed queries and
// report per-size runtimes; the shape to check is polynomial (here:
// near-linear for matches, near-linear-in-edges for path search), NOT
// exponential. google-benchmark's --benchmark_report_aggregates_only or
// the default output both show the trend.
#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "snb/generator.h"
#include "snb/schema.h"

namespace gcore {
namespace {

struct SizedFixture {
  GraphCatalog catalog;
  std::unique_ptr<QueryEngine> engine;
  size_t num_edges = 0;

  explicit SizedFixture(size_t persons) {
    snb::GeneratorOptions options;
    options.num_persons = persons;
    PathPropertyGraph g = snb::Generate(options, catalog.ids());
    num_edges = g.NumEdges();
    catalog.RegisterGraph("snb", std::move(g));
    catalog.SetDefaultGraph("snb");
    engine = std::make_unique<QueryEngine>(&catalog);
  }
};

void RunQuery(benchmark::State& state, const char* query) {
  SizedFixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = f.engine->Execute(query);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["persons"] = static_cast<double>(state.range(0));
  state.counters["edges"] = static_cast<double>(f.num_edges);
  // time / edges: roughly flat curve <=> linear in data size.
  state.counters["per_edge_ns"] = benchmark::Counter(
      static_cast<double>(f.num_edges),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void BM_FilterMatch(benchmark::State& state) {
  RunQuery(state,
           "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'");
}
BENCHMARK(BM_FilterMatch)
    ->RangeMultiplier(4)
    ->Range(100, 6400)
    ->Unit(benchmark::kMillisecond);

void BM_TwoHopPattern(benchmark::State& state) {
  RunQuery(state,
           "CONSTRUCT (n)-[:coloc]->(m) "
           "MATCH (n:Person)-[:isLocatedIn]->(c)<-[:isLocatedIn]-(m:Person) "
           "WHERE n.firstName = 'John' AND n.lastName = 'Doe'");
}
BENCHMARK(BM_TwoHopPattern)
    ->RangeMultiplier(4)
    ->Range(100, 6400)
    ->Unit(benchmark::kMillisecond);

void BM_GraphAggregation(benchmark::State& state) {
  RunQuery(state,
           "CONSTRUCT (x GROUP e :Emp {name:=e}) "
           "MATCH (n:Person {employer=e})");
}
BENCHMARK(BM_GraphAggregation)
    ->RangeMultiplier(4)
    ->Range(100, 6400)
    ->Unit(benchmark::kMillisecond);

void BM_ReachabilitySingleSource(benchmark::State& state) {
  RunQuery(state,
           "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
           "WHERE n.firstName = 'John' AND n.lastName = 'Doe'");
}
BENCHMARK(BM_ReachabilitySingleSource)
    ->RangeMultiplier(4)
    ->Range(100, 6400)
    ->Unit(benchmark::kMillisecond);

void BM_ShortestPathSingleSource(benchmark::State& state) {
  RunQuery(state,
           "CONSTRUCT (n)-/@p:sp{d:=c}/->(m) "
           "MATCH (n:Person)-/p <:knows*> COST c/->(m:Person) "
           "WHERE n.firstName = 'John' AND n.lastName = 'Doe'");
}
BENCHMARK(BM_ShortestPathSingleSource)
    ->RangeMultiplier(4)
    ->Range(100, 6400)
    ->Unit(benchmark::kMillisecond);

void BM_UnionWithInput(benchmark::State& state) {
  RunQuery(state,
           "CONSTRUCT (n)-[:coloc]->(m) "
           "MATCH (n:Person)-[:isLocatedIn]->(c)<-[:isLocatedIn]-(m:Person) "
           "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
           "UNION snb");
}
BENCHMARK(BM_UnionWithInput)
    ->RangeMultiplier(4)
    ->Range(100, 6400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
