// Concurrent serving throughput bench (scripts/run_bench.sh →
// BENCH_serving.json).
//
// An SNB query mix — point lookups, one-hop expands and a reachability
// path query — driven through QuerySessions at 1, 2 and
// hardware_concurrency threads, cold (plan cache disabled: every call
// parses and re-plans) vs warm (default cache: steady-state serving pays
// execution only). Each episode runs every worker through kRounds copies
// of the mix with per-query latency recording; the JSON carries QPS
// (items_per_second / the qps counter) and p50/p95/p99 latency counters.
// Intra-query parallelism is pinned to 1 so thread counts compare
// inter-query scaling, not morsel scheduling. Every result is compared
// byte-for-byte against the serial reference — a mismatch aborts the
// benchmark — which is the acceptance check that concurrent sessions
// return identical results at every thread count.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "snb/generator.h"

namespace gcore {
namespace {

/// One "profile card" star join per anchored person: the SNB
/// interactive-complex shape whose 7-relation DP join enumeration makes
/// planning the dominant cold cost — exactly what a plan cache amortizes.
std::string ProfileCardQuery(const char* first, const char* last) {
  return std::string(
             "SELECT co1.name AS employer, c1.name AS city, "
             "COUNT(*) AS fanout "
             "MATCH (a:Person)-[:knows]->(b:Person), "
             "(a)-[:isLocatedIn]->(c1:City), (b)-[:isLocatedIn]->(c2:City), "
             "(a)-[:worksAt]->(co1:Company), (b)-[:worksAt]->(co2:Company), "
             "(a)-[:hasInterest]->(t1:Tag), (b)-[:hasInterest]->(t2:Tag) "
             "WHERE a.firstName = '") +
         first + "' AND a.lastName = '" + last + "'";
}

/// The serving mix: lookup-heavy (six point lookups), two one-hop
/// expands, two profile-card star joins and one reachability path query.
/// ('Wei','Chen'), ('Raj','Patel') and ('Yuki','Sato') each name exactly
/// one generated person (first/last name cycles align below index 400).
std::vector<std::string> MakeMix() {
  std::vector<std::string> mix;
  for (const char* name : {"Wei", "Amina", "Hugo", "Nina", "Sofia", "Ivan"}) {
    mix.push_back(
        std::string(
            "SELECT n.lastName AS l MATCH (n:Person) WHERE n.firstName = '") +
        name + "'");
  }
  mix.push_back(
      "SELECT COUNT(*) AS deg "
      "MATCH (n:Person)-[:knows]->(m:Person) WHERE n.firstName = 'Maria'");
  mix.push_back(
      "SELECT c.name AS city, COUNT(*) AS people "
      "MATCH (n:Person)-[:isLocatedIn]->(c:City) WHERE n.firstName = 'Omar'");
  mix.push_back(ProfileCardQuery("Wei", "Chen"));
  mix.push_back(ProfileCardQuery("Raj", "Patel"));
  mix.push_back(
      "SELECT COUNT(*) AS reach "
      "MATCH (a:Person)-/<:knows*>/->(b:Person) "
      "WHERE a.firstName = 'Yuki' AND a.lastName = 'Sato'");
  return mix;
}
constexpr int kRoundsPerEpisode = 4;

EngineOptions ServingOptions() {
  EngineOptions options;
  options.parallelism = 1;  // inter-query concurrency only
  return options;
}

/// Shared across all benchmark runs: one catalog + engine over a
/// deterministic SNB graph, plus the serial reference results.
struct ServingBench {
  static ServingBench& Get() {
    static ServingBench* instance = new ServingBench();
    return *instance;
  }

  GraphCatalog catalog;
  std::unique_ptr<QueryEngine> engine;
  std::vector<std::string> mix;
  std::vector<std::string> expected;

  ServingBench() {
    // Small hot graph: a serving tier's working set, where per-query
    // planning cost and execution cost are the same order of magnitude.
    snb::GeneratorOptions gen;
    gen.num_persons = 300;
    catalog.RegisterGraph("snb", snb::Generate(gen, catalog.ids()));
    catalog.SetDefaultGraph("snb");
    engine = std::make_unique<QueryEngine>(&catalog);
    mix = MakeMix();
    const EngineOptions options = ServingOptions();
    for (const std::string& q : mix) {
      auto r = engine->Execute(q, options);
      if (!r.ok()) {
        fprintf(stderr, "serving bench reference failed: %s\n",
                r.status().ToString().c_str());
        abort();
      }
      expected.push_back(r->ToString());
    }
  }
};

void BM_ServingMix(benchmark::State& state) {
  const int num_threads = static_cast<int>(state.range(0));
  const bool warm = state.range(1) != 0;
  ServingBench& sb = ServingBench::Get();

  sb.engine->set_plan_cache_capacity(warm ? PlanCache::kDefaultCapacity : 0);
  sb.engine->clear_plan_cache();
  if (warm) {
    // Steady-state serving: the mix is already resident.
    for (const std::string& q : sb.mix) {
      auto r = sb.engine->Execute(q, ServingOptions());
      if (!r.ok()) state.SkipWithError("warmup failed");
    }
  }
  const size_t mix_size = sb.mix.size();

  std::vector<double> latencies_us;
  std::atomic<int> mismatches{0};
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(num_threads);
    std::atomic<int> start_barrier{0};
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    const auto episode_start = std::chrono::steady_clock::now();
    for (int t = 0; t < num_threads; ++t) {
      QuerySession session = sb.engine->CreateSession(ServingOptions());
      workers.emplace_back([&, t, session]() mutable {
        start_barrier.fetch_add(1);
        while (start_barrier.load(std::memory_order_acquire) < num_threads) {
        }
        auto& local = per_thread[t];
        local.reserve(kRoundsPerEpisode * mix_size);
        for (int round = 0; round < kRoundsPerEpisode; ++round) {
          for (size_t q = 0; q < mix_size; ++q) {
            const auto begin = std::chrono::steady_clock::now();
            auto r = session.Execute(sb.mix[q]);
            const auto end = std::chrono::steady_clock::now();
            local.push_back(
                std::chrono::duration<double, std::micro>(end - begin)
                    .count());
            if (!r.ok() || r->ToString() != sb.expected[q]) ++mismatches;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const auto episode_end = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(episode_end - episode_start).count());
    for (auto& local : per_thread) {
      latencies_us.insert(latencies_us.end(), local.begin(), local.end());
    }
  }
  if (mismatches.load() != 0) {
    state.SkipWithError("concurrent results diverged from serial reference");
    return;
  }

  const double total_queries = static_cast<double>(latencies_us.size());
  state.SetItemsProcessed(static_cast<int64_t>(total_queries));
  state.counters["qps"] =
      benchmark::Counter(total_queries, benchmark::Counter::kIsRate);
  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct = [&](double p) {
    if (latencies_us.empty()) return 0.0;
    const size_t idx = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_us.size())));
    return latencies_us[idx];
  };
  state.counters["p50_us"] = pct(0.50);
  state.counters["p95_us"] = pct(0.95);
  state.counters["p99_us"] = pct(0.99);
}

void ServingArgs(benchmark::internal::Benchmark* b) {
  const int max_threads = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  b->ArgNames({"threads", "warm"});
  for (int threads : {1, 2, max_threads}) {
    b->Args({threads, 0});
    b->Args({threads, 1});
    if (max_threads == 2 && threads == 2) break;  // dedupe 1-CPU boxes
  }
}

BENCHMARK(BM_ServingMix)->Apply(ServingArgs)->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
