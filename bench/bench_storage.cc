// Storage trajectory bench (scripts/run_bench.sh → BENCH_storage.json).
//
// Measures the GraphSnapshot payoff on a generated SNB graph, each read
// primitive in two variants:
//
//   *_MapWalk   the mutable PathPropertyGraph representation the read
//               path used before the snapshot: ordered-map walks over
//               λ label sets and σ ValueSets per object;
//   *_Span /    the frozen columnar image: per-label sorted index spans,
//   *_Column    typed (kind, slot) property columns, CSR adjacency.
//
// Plus the one-off cost the payoff buys: BM_Storage_SnapshotBuild. The
// acceptance trajectory tracks the single-thread MapWalk/Span ratio on
// the label scan and the pushed property filter.
//
// Persistence timings ride along: BM_Storage_SnapshotSave (arena →
// file), BM_Storage_SnapshotLoad (read-back + checksum + validation),
// and BM_Storage_SnapshotMmap (zero-copy map + validation). The
// load-vs-freeze ratio at 20k persons is the acceptance number for the
// flat-arena format — opening a saved file must beat re-freezing the
// PPG by ≥ 10×.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/catalog.h"
#include "graph/snapshot.h"
#include "graph/snapshot_io.h"
#include "snb/generator.h"
#include "snb/schema.h"

namespace gcore {
namespace {

struct StorageFixture {
  GraphCatalog catalog;
  const PathPropertyGraph* graph = nullptr;
  std::unique_ptr<GraphSnapshot> snap;

  explicit StorageFixture(size_t persons) {
    snb::GeneratorOptions options;
    options.num_persons = persons;
    options.avg_knows_degree = 10.0;
    catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
    graph = *catalog.Lookup("snb");
    snap = std::make_unique<GraphSnapshot>(*graph);
  }
};

// --- snapshot build: the one-off freeze cost ----------------------------------

void BM_Storage_SnapshotBuild(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    GraphSnapshot snap(*fx.graph);
    benchmark::DoNotOptimize(snap);
  }
  state.counters["nodes"] = static_cast<double>(fx.snap->num_nodes());
  state.counters["edges"] = static_cast<double>(fx.snap->num_edges());
}
BENCHMARK(BM_Storage_SnapshotBuild)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// --- persistence: save / load / mmap the frozen arena -------------------------

std::string BenchSnapshotPath(int64_t persons) {
  return "/tmp/gcore_bench_" + std::to_string(persons) + ".snap";
}

void BM_Storage_SnapshotSave(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  const std::string path = BenchSnapshotPath(state.range(0));
  for (auto _ : state) {
    const Status s = SaveSnapshot(*fx.snap, path);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["bytes"] = static_cast<double>(fx.snap->arena().size());
  std::remove(path.c_str());
}
BENCHMARK(BM_Storage_SnapshotSave)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_Storage_SnapshotLoad(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  const std::string path = BenchSnapshotPath(state.range(0));
  if (!SaveSnapshot(*fx.snap, path).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  for (auto _ : state) {
    auto snap = LoadSnapshotFile(path);
    if (!snap.ok()) state.SkipWithError(snap.status().ToString().c_str());
    benchmark::DoNotOptimize(snap);
  }
  state.counters["nodes"] = static_cast<double>(fx.snap->num_nodes());
  std::remove(path.c_str());
}
BENCHMARK(BM_Storage_SnapshotLoad)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_Storage_SnapshotMmap(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  const std::string path = BenchSnapshotPath(state.range(0));
  if (!SaveSnapshot(*fx.snap, path).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  const uint32_t person = fx.snap->LabelId(snb::kPerson);
  for (auto _ : state) {
    auto snap = MmapSnapshotFile(path);
    if (!snap.ok()) state.SkipWithError(snap.status().ToString().c_str());
    // Touch the label index so the map is actually usable, not just
    // created lazily.
    benchmark::DoNotOptimize((*snap)->NodesWithLabel(person).size());
  }
  state.counters["nodes"] = static_cast<double>(fx.snap->num_nodes());
  std::remove(path.c_str());
}
BENCHMARK(BM_Storage_SnapshotMmap)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// --- NodeScan (a:Person): full filter scan vs contiguous label span -----------

void BM_Storage_LabelScanMapWalk(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  size_t persons = 0;
  for (auto _ : state) {
    std::vector<NodeId> hits;
    fx.graph->ForEachNode([&](NodeId id) {
      if (fx.graph->Labels(id).Contains(snb::kPerson)) hits.push_back(id);
    });
    persons = hits.size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["persons"] = static_cast<double>(persons);
}
BENCHMARK(BM_Storage_LabelScanMapWalk)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_Storage_LabelScanSpan(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  const uint32_t person = fx.snap->LabelId(snb::kPerson);
  const AdjacencyIndex& adj = fx.snap->adjacency();
  size_t persons = 0;
  for (auto _ : state) {
    std::vector<NodeId> hits;
    const auto span = fx.snap->NodesWithLabel(person);
    hits.reserve(span.size());
    for (const DenseNodeIndex n : span) hits.push_back(adj.IdOf(n));
    persons = hits.size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["persons"] = static_cast<double>(persons);
}
BENCHMARK(BM_Storage_LabelScanSpan)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// --- pushed property filter: σ map walk vs typed column scan ------------------

void BM_Storage_PushedFilterMapWalk(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  const Value literal = Value::String("Alice");
  size_t hits = 0;
  for (auto _ : state) {
    size_t count = 0;
    fx.graph->ForEachNode([&](NodeId id) {
      if (fx.graph->Property(id, snb::kFirstName).Contains(literal)) ++count;
    });
    hits = count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_Storage_PushedFilterMapWalk)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_Storage_PushedFilterColumn(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  const Value literal = Value::String("Alice");
  const GraphSnapshot::PropertyColumn* col =
      fx.snap->NodeColumn(snb::kFirstName);
  size_t hits = 0;
  for (auto _ : state) {
    size_t count = 0;
    const size_t n = fx.snap->num_nodes();
    for (size_t i = 0; i < n; ++i) {
      if (fx.snap->CellContains(*col, i, literal)) ++count;
    }
    hits = count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_Storage_PushedFilterColumn)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// --- expand: one knows-hop from every Person via the CSR topology -------------

void BM_Storage_ExpandCsr(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  const uint32_t person = fx.snap->LabelId(snb::kPerson);
  const uint32_t knows = fx.snap->LabelId(snb::kKnows);
  const AdjacencyIndex& adj = fx.snap->adjacency();
  size_t out_rows = 0;
  for (auto _ : state) {
    size_t count = 0;
    for (const DenseNodeIndex n : fx.snap->NodesWithLabel(person)) {
      const auto [b, e] = adj.Out(n);
      for (const AdjacencyEntry* it = b; it != e; ++it) {
        if (fx.snap->EdgeHasLabel(it->edge_dense, knows)) {
          ++count;
        }
      }
    }
    out_rows = count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_Storage_ExpandCsr)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_Storage_ExpandMapWalk(benchmark::State& state) {
  StorageFixture fx(static_cast<size_t>(state.range(0)));
  const AdjacencyIndex& adj = fx.snap->adjacency();
  size_t out_rows = 0;
  for (auto _ : state) {
    size_t count = 0;
    fx.graph->ForEachNode([&](NodeId id) {
      if (!fx.graph->Labels(id).Contains(snb::kPerson)) return;
      const auto [b, e] = adj.Out(adj.IndexOf(id));
      for (const AdjacencyEntry* it = b; it != e; ++it) {
        if (fx.graph->Labels(it->edge).Contains(snb::kKnows)) ++count;
      }
    });
    out_rows = count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_Storage_ExpandMapWalk)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
