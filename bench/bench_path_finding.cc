// Path-machinery micro-benchmarks: the evaluation cost of the paper's
// path features in isolation — reachability, 1/k-shortest, weighted view
// traversal, ALL-paths projection — as graph size and regex complexity
// grow (the "most powerful path query functionality ... while carefully
// avoiding intractable complexity" claim).
//
// The *_Serial / *_Delta / *_Batched / *_Bidirectional families are the
// parallel-path-engine ablation (scripts/run_bench.sh → BENCH_paths.json):
// the serial executable spec vs the bucketed / 64-lane-wave / meet-in-
// the-middle kernels, at parallelism 1 and at one-thread-per-core (0).
#include <benchmark/benchmark.h>

#include "graph/snapshot.h"
#include "parser/parser.h"
#include "paths/all_paths.h"
#include "paths/batched_bfs.h"
#include "paths/delta_stepping.h"
#include "paths/k_shortest.h"
#include "paths/product_bfs.h"
#include "snb/generator.h"
#include "snb/schema.h"

namespace gcore {
namespace {

struct PathFixture {
  IdAllocator ids;
  PathPropertyGraph graph;
  std::unique_ptr<AdjacencyIndex> adj;
  NodeId src;
  NodeId dst;

  explicit PathFixture(size_t persons) {
    snb::GeneratorOptions options;
    options.num_persons = persons;
    graph = snb::Generate(options, &ids);
    adj = std::make_unique<AdjacencyIndex>(graph);
    // First and last Person nodes as endpoints.
    graph.ForEachNode([&](NodeId n) {
      if (!graph.Labels(n).Contains(snb::kPerson)) return;
      if (!src.valid()) src = n;
      dst = n;
    });
  }

  PathSearchContext Ctx(const Nfa* nfa) const {
    PathSearchContext ctx;
    ctx.adj = adj.get();
    ctx.nfa = nfa;
    return ctx;
  }
};

Nfa CompileOrDie(const char* regex) {
  auto r = ParseRpq(regex);
  if (!r.ok()) std::abort();
  return Nfa::Compile(**r);
}

void BM_Reachability(benchmark::State& state) {
  PathFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows*");
  size_t reached = 0;
  for (auto _ : state) {
    auto r = ReachableFrom(f.Ctx(&nfa), f.src);
    if (!r.ok()) state.SkipWithError("reachability failed");
    reached = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["reached"] = static_cast<double>(reached);
}
BENCHMARK(BM_Reachability)
    ->RangeMultiplier(4)
    ->Range(200, 12800)
    ->Unit(benchmark::kMillisecond);

void BM_SingleSourceShortest(benchmark::State& state) {
  PathFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows*");
  for (auto _ : state) {
    auto r = ShortestPathsFrom(f.Ctx(&nfa), f.src);
    if (!r.ok()) state.SkipWithError("shortest failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SingleSourceShortest)
    ->RangeMultiplier(4)
    ->Range(200, 12800)
    ->Unit(benchmark::kMillisecond);

void BM_KShortest(benchmark::State& state) {
  PathFixture f(1600);
  const size_t k = static_cast<size_t>(state.range(0));
  Nfa nfa = CompileOrDie(":knows*");
  for (auto _ : state) {
    auto r = KShortestPathsFrom(f.Ctx(&nfa), f.src, k);
    if (!r.ok()) state.SkipWithError("k-shortest failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("k=" + std::to_string(k) + ", persons=1600");
}
BENCHMARK(BM_KShortest)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

void BM_RegexComplexity(benchmark::State& state) {
  // Regex alternatives of increasing automaton size over a fixed graph:
  // evaluation is O(product) = graph × NFA states, so growth must be
  // proportional to NFA size, not exponential.
  static const char* kRegexes[] = {
      ":knows",
      ":knows :knows",
      ":knows*",
      "(:knows|:isLocatedIn)*",
      "(:knows :knows)* :isLocatedIn?",
      "!Person (:knows !Person)*",
  };
  PathFixture f(1600);
  Nfa nfa = CompileOrDie(kRegexes[state.range(0)]);
  for (auto _ : state) {
    auto r = ReachableFrom(f.Ctx(&nfa), f.src);
    if (!r.ok()) state.SkipWithError("reachability failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(kRegexes[state.range(0)]) +
                 " (nfa states: " + std::to_string(nfa.num_states()) + ")");
}
BENCHMARK(BM_RegexComplexity)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_AllPathsProjection(benchmark::State& state) {
  PathFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows*");
  for (auto _ : state) {
    auto r = AllPathsProjection(f.Ctx(&nfa), f.src, f.dst);
    if (!r.ok()) state.SkipWithError("projection failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AllPathsProjection)
    ->RangeMultiplier(4)
    ->Range(200, 3200)
    ->Unit(benchmark::kMillisecond);

void BM_WeightedViewTraversal(benchmark::State& state) {
  // A wKnows-style view over every knows edge with property-derived cost,
  // then Dijkstra over <~w*>.
  PathFixture f(static_cast<size_t>(state.range(0)));
  PathViewRegistry views;
  PathViewRelation rel("w");
  uint64_t i = 0;
  f.graph.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (!f.graph.Labels(e).Contains(snb::kKnows)) return;
    PathViewSegment seg;
    seg.src = src;
    seg.dst = dst;
    seg.cost = 1.0 / (1.0 + static_cast<double>(i++ % 7));
    seg.body.nodes = {src, dst};
    seg.body.edges = {e};
    if (!rel.AddSegment(std::move(seg)).ok()) std::abort();
  });
  views.Register(std::move(rel));

  Nfa nfa = CompileOrDie("~w*");
  PathSearchContext ctx = f.Ctx(&nfa);
  ctx.views = &views;
  for (auto _ : state) {
    auto r = ShortestPathsFrom(ctx, f.src);
    if (!r.ok()) state.SkipWithError("weighted traversal failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WeightedViewTraversal)
    ->RangeMultiplier(4)
    ->Range(200, 3200)
    ->Unit(benchmark::kMillisecond);

/// SNB graph with a synthetic integer weight property on every edge
/// (the generator emits no numeric edge properties), snapshotted so the
/// delta kernels read weights through the typed column via
/// AdjacencyEntry::edge_dense.
struct WeightedFixture {
  IdAllocator ids;
  PathPropertyGraph graph;
  std::unique_ptr<GraphSnapshot> snap;
  NodeId src;
  std::vector<NodeId> persons;

  explicit WeightedFixture(size_t num_persons) {
    snb::GeneratorOptions options;
    options.num_persons = num_persons;
    graph = snb::Generate(options, &ids);
    std::vector<EdgeId> edges;
    graph.ForEachEdge([&](EdgeId e, NodeId, NodeId) { edges.push_back(e); });
    uint64_t i = 0;
    for (EdgeId e : edges) {
      graph.SetProperty(
          e, "w", ValueSet(Value::Int(static_cast<int64_t>(1 + i++ % 7))));
    }
    snap = std::make_unique<GraphSnapshot>(graph);
    graph.ForEachNode([&](NodeId n) {
      if (!graph.Labels(n).Contains(snb::kPerson)) return;
      if (!src.valid()) src = n;
      persons.push_back(n);
    });
  }

  DenseEdgeWeightFn Weight() const {
    return SnapshotWeightFn(snap->EdgeWeights("w"));
  }
};

// Weighted SSSP: serial binary heap (the executable spec, forced via a
// huge serial_cutoff) vs the bucketed delta-stepping kernel at
// parallelism 1 and hardware (range(1)).
void BM_WeightedSssp_Heap(benchmark::State& state) {
  WeightedFixture f(static_cast<size_t>(state.range(0)));
  const DenseEdgeWeightFn weight = f.Weight();
  for (auto _ : state) {
    auto r = KSsspHeapFrom(f.snap->adjacency(), f.src, weight, 1);
    if (!r.ok()) state.SkipWithError("heap sssp failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WeightedSssp_Heap)
    ->Args({2000})
    ->Args({20000})
    ->Unit(benchmark::kMillisecond);

void BM_WeightedSssp_Delta(benchmark::State& state) {
  WeightedFixture f(static_cast<size_t>(state.range(0)));
  const DenseEdgeWeightFn weight = f.Weight();
  ParallelSsspOptions opts;
  opts.parallelism = static_cast<size_t>(state.range(1));
  opts.serial_cutoff = 0;
  for (auto _ : state) {
    auto r = DeltaSsspFrom(f.snap->adjacency(), f.src, weight, opts);
    if (!r.ok()) state.SkipWithError("delta sssp failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("parallelism=" + std::to_string(opts.parallelism));
}
BENCHMARK(BM_WeightedSssp_Delta)
    ->Args({2000, 1})
    ->Args({2000, 0})
    ->Args({20000, 1})
    ->Args({20000, 0})
    ->Unit(benchmark::kMillisecond);

// 4-SSSP: the four cheapest walk costs per node.
void BM_KSssp4_Heap(benchmark::State& state) {
  WeightedFixture f(static_cast<size_t>(state.range(0)));
  const DenseEdgeWeightFn weight = f.Weight();
  for (auto _ : state) {
    auto r = KSsspHeapFrom(f.snap->adjacency(), f.src, weight, 4);
    if (!r.ok()) state.SkipWithError("heap 4-sssp failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KSssp4_Heap)
    ->Args({2000})
    ->Args({20000})
    ->Unit(benchmark::kMillisecond);

void BM_KSssp4_Delta(benchmark::State& state) {
  WeightedFixture f(static_cast<size_t>(state.range(0)));
  const DenseEdgeWeightFn weight = f.Weight();
  ParallelSsspOptions opts;
  opts.parallelism = static_cast<size_t>(state.range(1));
  opts.serial_cutoff = 0;
  for (auto _ : state) {
    auto r = DeltaKSsspFrom(f.snap->adjacency(), f.src, weight, 4, opts);
    if (!r.ok()) state.SkipWithError("delta 4-sssp failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("parallelism=" + std::to_string(opts.parallelism));
}
BENCHMARK(BM_KSssp4_Delta)
    ->Args({2000, 1})
    ->Args({2000, 0})
    ->Args({20000, 1})
    ->Args({20000, 0})
    ->Unit(benchmark::kMillisecond);

// RPQ pair query: full forward fixpoint vs the bidirectional
// meet-in-the-middle probe, src = first person, dst = last person.
void BM_RpqPair_Forward(benchmark::State& state) {
  PathFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows* :isLocatedIn");
  PathSearchContext ctx = f.Ctx(&nfa);
  for (auto _ : state) {
    auto r = ReachableFrom(ctx, f.src);
    if (!r.ok()) state.SkipWithError("forward rpq failed");
    benchmark::DoNotOptimize(r->count(f.dst));
  }
}
BENCHMARK(BM_RpqPair_Forward)
    ->Args({2000})
    ->Args({20000})
    ->Unit(benchmark::kMillisecond);

void BM_RpqPair_Bidirectional(benchmark::State& state) {
  PathFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows* :isLocatedIn");
  PathSearchContext ctx = f.Ctx(&nfa);
  for (auto _ : state) {
    auto r = IsReachable(ctx, f.src, f.dst);
    if (!r.ok()) state.SkipWithError("bidirectional rpq failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RpqPair_Bidirectional)
    ->Args({2000})
    ->Args({20000})
    ->Unit(benchmark::kMillisecond);

// Multi-source reachability, 64 sources: one traversal per source (what
// PathSearchOp used to launch per row) vs one 64-lane mask wave. The
// acceptance trajectory tracks the single-thread PerSource/Batched ratio
// at SNB 20k.
void BM_MultiSourceReach_PerSource(benchmark::State& state) {
  WeightedFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows*");
  PathSearchContext ctx;
  ctx.adj = &f.snap->adjacency();
  ctx.nfa = &nfa;
  ctx.snap = f.snap.get();
  const size_t n = std::min<size_t>(64, f.persons.size());
  size_t reached = 0;
  for (auto _ : state) {
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      auto r = ReachableFrom(ctx, f.persons[i]);
      if (!r.ok()) state.SkipWithError("per-source reachability failed");
      count += r->size();
    }
    reached = count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["reached"] = static_cast<double>(reached);
}
BENCHMARK(BM_MultiSourceReach_PerSource)
    ->Args({2000})
    ->Args({20000})
    ->Unit(benchmark::kMillisecond);

void BM_MultiSourceReach_Batched(benchmark::State& state) {
  WeightedFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows*");
  PathSearchContext ctx;
  ctx.adj = &f.snap->adjacency();
  ctx.nfa = &nfa;
  ctx.snap = f.snap.get();
  ctx.parallelism = static_cast<size_t>(state.range(1));
  const size_t n = std::min<size_t>(64, f.persons.size());
  std::vector<NodeId> sources(f.persons.begin(), f.persons.begin() + n);
  size_t reached = 0;
  for (auto _ : state) {
    auto r = BatchedReachableFrom(ctx, sources);
    if (!r.ok()) state.SkipWithError("batched reachability failed");
    size_t count = 0;
    for (const auto& s : *r) count += s.size();
    reached = count;
    benchmark::DoNotOptimize(r);
  }
  state.counters["reached"] = static_cast<double>(reached);
  state.SetLabel("parallelism=" + std::to_string(ctx.parallelism));
}
BENCHMARK(BM_MultiSourceReach_Batched)
    ->Args({2000, 1})
    ->Args({2000, 0})
    ->Args({20000, 1})
    ->Args({20000, 0})
    ->Unit(benchmark::kMillisecond);

void BM_AdjacencyBuild(benchmark::State& state) {
  IdAllocator ids;
  snb::GeneratorOptions options;
  options.num_persons = static_cast<size_t>(state.range(0));
  PathPropertyGraph graph = snb::Generate(options, &ids);
  for (auto _ : state) {
    AdjacencyIndex adj(graph);
    benchmark::DoNotOptimize(adj);
  }
  state.counters["edges"] = static_cast<double>(graph.NumEdges());
}
BENCHMARK(BM_AdjacencyBuild)
    ->RangeMultiplier(4)
    ->Range(200, 12800)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
