// Path-machinery micro-benchmarks: the evaluation cost of the paper's
// path features in isolation — reachability, 1/k-shortest, weighted view
// traversal, ALL-paths projection — as graph size and regex complexity
// grow (the "most powerful path query functionality ... while carefully
// avoiding intractable complexity" claim).
#include <benchmark/benchmark.h>

#include "parser/parser.h"
#include "paths/all_paths.h"
#include "paths/k_shortest.h"
#include "paths/product_bfs.h"
#include "snb/generator.h"
#include "snb/schema.h"

namespace gcore {
namespace {

struct PathFixture {
  IdAllocator ids;
  PathPropertyGraph graph;
  std::unique_ptr<AdjacencyIndex> adj;
  NodeId src;
  NodeId dst;

  explicit PathFixture(size_t persons) {
    snb::GeneratorOptions options;
    options.num_persons = persons;
    graph = snb::Generate(options, &ids);
    adj = std::make_unique<AdjacencyIndex>(graph);
    // First and last Person nodes as endpoints.
    graph.ForEachNode([&](NodeId n) {
      if (!graph.Labels(n).Contains(snb::kPerson)) return;
      if (!src.valid()) src = n;
      dst = n;
    });
  }

  PathSearchContext Ctx(const Nfa* nfa) const {
    PathSearchContext ctx;
    ctx.adj = adj.get();
    ctx.nfa = nfa;
    return ctx;
  }
};

Nfa CompileOrDie(const char* regex) {
  auto r = ParseRpq(regex);
  if (!r.ok()) std::abort();
  return Nfa::Compile(**r);
}

void BM_Reachability(benchmark::State& state) {
  PathFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows*");
  size_t reached = 0;
  for (auto _ : state) {
    auto r = ReachableFrom(f.Ctx(&nfa), f.src);
    if (!r.ok()) state.SkipWithError("reachability failed");
    reached = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["reached"] = static_cast<double>(reached);
}
BENCHMARK(BM_Reachability)
    ->RangeMultiplier(4)
    ->Range(200, 12800)
    ->Unit(benchmark::kMillisecond);

void BM_SingleSourceShortest(benchmark::State& state) {
  PathFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows*");
  for (auto _ : state) {
    auto r = ShortestPathsFrom(f.Ctx(&nfa), f.src);
    if (!r.ok()) state.SkipWithError("shortest failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SingleSourceShortest)
    ->RangeMultiplier(4)
    ->Range(200, 12800)
    ->Unit(benchmark::kMillisecond);

void BM_KShortest(benchmark::State& state) {
  PathFixture f(1600);
  const size_t k = static_cast<size_t>(state.range(0));
  Nfa nfa = CompileOrDie(":knows*");
  for (auto _ : state) {
    auto r = KShortestPathsFrom(f.Ctx(&nfa), f.src, k);
    if (!r.ok()) state.SkipWithError("k-shortest failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("k=" + std::to_string(k) + ", persons=1600");
}
BENCHMARK(BM_KShortest)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

void BM_RegexComplexity(benchmark::State& state) {
  // Regex alternatives of increasing automaton size over a fixed graph:
  // evaluation is O(product) = graph × NFA states, so growth must be
  // proportional to NFA size, not exponential.
  static const char* kRegexes[] = {
      ":knows",
      ":knows :knows",
      ":knows*",
      "(:knows|:isLocatedIn)*",
      "(:knows :knows)* :isLocatedIn?",
      "!Person (:knows !Person)*",
  };
  PathFixture f(1600);
  Nfa nfa = CompileOrDie(kRegexes[state.range(0)]);
  for (auto _ : state) {
    auto r = ReachableFrom(f.Ctx(&nfa), f.src);
    if (!r.ok()) state.SkipWithError("reachability failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(kRegexes[state.range(0)]) +
                 " (nfa states: " + std::to_string(nfa.num_states()) + ")");
}
BENCHMARK(BM_RegexComplexity)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_AllPathsProjection(benchmark::State& state) {
  PathFixture f(static_cast<size_t>(state.range(0)));
  Nfa nfa = CompileOrDie(":knows*");
  for (auto _ : state) {
    auto r = AllPathsProjection(f.Ctx(&nfa), f.src, f.dst);
    if (!r.ok()) state.SkipWithError("projection failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AllPathsProjection)
    ->RangeMultiplier(4)
    ->Range(200, 3200)
    ->Unit(benchmark::kMillisecond);

void BM_WeightedViewTraversal(benchmark::State& state) {
  // A wKnows-style view over every knows edge with property-derived cost,
  // then Dijkstra over <~w*>.
  PathFixture f(static_cast<size_t>(state.range(0)));
  PathViewRegistry views;
  PathViewRelation rel("w");
  uint64_t i = 0;
  f.graph.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (!f.graph.Labels(e).Contains(snb::kKnows)) return;
    PathViewSegment seg;
    seg.src = src;
    seg.dst = dst;
    seg.cost = 1.0 / (1.0 + static_cast<double>(i++ % 7));
    seg.body.nodes = {src, dst};
    seg.body.edges = {e};
    if (!rel.AddSegment(std::move(seg)).ok()) std::abort();
  });
  views.Register(std::move(rel));

  Nfa nfa = CompileOrDie("~w*");
  PathSearchContext ctx = f.Ctx(&nfa);
  ctx.views = &views;
  for (auto _ : state) {
    auto r = ShortestPathsFrom(ctx, f.src);
    if (!r.ok()) state.SkipWithError("weighted traversal failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WeightedViewTraversal)
    ->RangeMultiplier(4)
    ->Range(200, 3200)
    ->Unit(benchmark::kMillisecond);

void BM_AdjacencyBuild(benchmark::State& state) {
  IdAllocator ids;
  snb::GeneratorOptions options;
  options.num_persons = static_cast<size_t>(state.range(0));
  PathPropertyGraph graph = snb::Generate(options, &ids);
  for (auto _ : state) {
    AdjacencyIndex adj(graph);
    benchmark::DoNotOptimize(adj);
  }
  state.counters["edges"] = static_cast<double>(graph.NumEdges());
}
BENCHMARK(BM_AdjacencyBuild)
    ->RangeMultiplier(4)
    ->Range(200, 12800)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
