// Vectorized expression kernel bench (scripts/run_bench.sh →
// BENCH_expr.json).
//
// Row-at-a-time ExprEvaluator vs the compiled VecProgram kernels
// (eval/expr_vec.h) on the three sites the PR wires up, at SNB 2k and
// 20k persons, single-threaded:
//
//   *_ArithFilter      one non-specializable WHERE conjunct,
//                      (n.age + n.score) * 2 > K, through
//                      Matcher::FilterTable (the residual-WHERE stage);
//   *_ThreeConjunctAnd three AND-ed conjuncts through
//                      Matcher::FilterByConjuncts (the pushdown stage;
//                      specialization and stats reordering stay on, so
//                      this measures the shipped pipeline end to end);
//   *_Projection       a computed projection batch, (n.age + n.score)/2,
//                      row Eval loop vs VecProgram::EvalValues.
//
// Every _Vec variant verifies at setup that its result is identical to
// the _Row variant's (row count and per-row rendered cells) and exports
// identical=1; the acceptance trajectory tracks the single-thread
// Row/Vec ratio on the arithmetic filter (target >= 2x).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eval/expr_vec.h"
#include "eval/matcher.h"
#include "graph/catalog.h"
#include "parser/parser.h"
#include "snb/generator.h"

namespace gcore {
namespace {

/// Generated graph + the all-persons binding table, cached per scale so
/// the 2k/20k instances build once per process.
struct Fixture {
  GraphCatalog catalog;
  const PathPropertyGraph* graph = nullptr;
  BindingTable persons{std::vector<std::string>{"n"}};

  explicit Fixture(size_t num_persons) {
    snb::GeneratorOptions options;
    options.num_persons = num_persons;
    PathPropertyGraph g = snb::Generate(options, catalog.ids());
    // Dense numeric columns over every person (the generator's own
    // properties are strings): an int age and a double score, so the
    // arithmetic conjuncts below never fall back.
    std::vector<NodeId> person_ids;
    for (NodeId id : g.NodeIds()) {
      if (!g.Labels(id).Contains("Person")) continue;
      const uint64_t v = id.value();
      g.SetProperty(id, "age", ValueSet(Value::Int(18 + (v % 50))));
      g.SetProperty(id, "score",
                    ValueSet(Value::Double((v % 100) * 0.5)));
      person_ids.push_back(id);
    }
    catalog.RegisterGraph("snb", std::move(g));
    graph = *catalog.Lookup("snb");
    persons.SetColumnGraph("n", "snb");
    persons.ReserveRows(person_ids.size());
    for (NodeId id : person_ids) {
      Status st = persons.AddRow({Datum::OfNode(id)});
      (void)st;
    }
  }
};

Fixture& FixtureFor(size_t num_persons) {
  static std::map<size_t, std::unique_ptr<Fixture>> cache;
  auto& slot = cache[num_persons];
  if (slot == nullptr) slot = std::make_unique<Fixture>(num_persons);
  return *slot;
}

MatcherContext MakeCtx(Fixture& fx, bool vectorized) {
  MatcherContext ctx;
  ctx.catalog = &fx.catalog;
  ctx.default_graph = "snb";
  ctx.enable_vectorized_exprs = vectorized;
  ctx.parallelism = 1;
  return ctx;
}

std::unique_ptr<Expr> Parse(const std::string& text) {
  auto e = ParseExpression(text);
  if (!e.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", e.status().ToString().c_str());
    std::abort();
  }
  return std::move(*e);
}

std::string RenderRows(const BindingTable& t) {
  std::string s;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    s += t.ColumnAt(0).DatumAt(r).ToString();
    s += '\n';
  }
  return s;
}

constexpr const char* kArithFilter = "(n.age + n.score) * 2 > 80";
const char* kConjuncts[] = {"n.age >= 20", "(n.age + n.score) * 2 > 80",
                            "n.age % 7 <> 3"};

// --- non-specializable arithmetic WHERE (FilterTable) -----------------------

void RunArithFilter(benchmark::State& state, bool vectorized) {
  Fixture& fx = FixtureFor(static_cast<size_t>(state.range(0)));
  std::unique_ptr<Expr> expr = Parse(kArithFilter);
  Matcher matcher(MakeCtx(fx, vectorized));
  // Result-identity check against the row path (the acceptance bar:
  // identical bytes, only faster).
  {
    Matcher row_matcher(MakeCtx(fx, false));
    auto want = row_matcher.FilterTable(fx.persons, *expr, fx.graph);
    auto got = matcher.FilterTable(fx.persons, *expr, fx.graph);
    if (!want.ok() || !got.ok() ||
        RenderRows(*want) != RenderRows(*got)) {
      std::fprintf(stderr, "arith filter results diverge\n");
      std::abort();
    }
    state.counters["identical"] = 1;
    state.counters["kept"] = static_cast<double>(got->NumRows());
  }
  for (auto _ : state) {
    auto filtered = matcher.FilterTable(fx.persons, *expr, fx.graph);
    benchmark::DoNotOptimize(filtered);
  }
  state.counters["rows"] = static_cast<double>(fx.persons.NumRows());
}

void BM_Expr_ArithFilter_Row(benchmark::State& state) {
  RunArithFilter(state, false);
}
void BM_Expr_ArithFilter_Vec(benchmark::State& state) {
  RunArithFilter(state, true);
}
BENCHMARK(BM_Expr_ArithFilter_Row)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Expr_ArithFilter_Vec)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// --- 3-conjunct AND (FilterByConjuncts) -------------------------------------

void RunThreeConjuncts(benchmark::State& state, bool vectorized) {
  Fixture& fx = FixtureFor(static_cast<size_t>(state.range(0)));
  std::vector<std::unique_ptr<Expr>> owned;
  std::vector<const Expr*> conjuncts;
  for (const char* c : kConjuncts) {
    owned.push_back(Parse(c));
    conjuncts.push_back(owned.back().get());
  }
  Matcher matcher(MakeCtx(fx, vectorized));
  {
    Matcher row_matcher(MakeCtx(fx, false));
    auto want = row_matcher.FilterByConjuncts(fx.persons, conjuncts, fx.graph);
    auto got = matcher.FilterByConjuncts(fx.persons, conjuncts, fx.graph);
    if (!want.ok() || !got.ok() ||
        RenderRows(*want) != RenderRows(*got)) {
      std::fprintf(stderr, "conjunct results diverge\n");
      std::abort();
    }
    state.counters["identical"] = 1;
    state.counters["kept"] = static_cast<double>(got->NumRows());
  }
  for (auto _ : state) {
    auto filtered = matcher.FilterByConjuncts(fx.persons, conjuncts, fx.graph);
    benchmark::DoNotOptimize(filtered);
  }
  state.counters["rows"] = static_cast<double>(fx.persons.NumRows());
}

void BM_Expr_ThreeConjunctAnd_Row(benchmark::State& state) {
  RunThreeConjuncts(state, false);
}
void BM_Expr_ThreeConjunctAnd_Vec(benchmark::State& state) {
  RunThreeConjuncts(state, true);
}
BENCHMARK(BM_Expr_ThreeConjunctAnd_Row)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Expr_ThreeConjunctAnd_Vec)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// --- computed projection batch (EvalValues vs row Eval loop) ----------------

void BM_Expr_Projection_Row(benchmark::State& state) {
  Fixture& fx = FixtureFor(static_cast<size_t>(state.range(0)));
  std::unique_ptr<Expr> expr = Parse("(n.age + n.score) / 2");
  Matcher matcher(MakeCtx(fx, false));
  ExprEvaluator eval = matcher.MakeEvaluator(fx.graph);
  for (auto _ : state) {
    std::vector<Datum> out;
    out.reserve(fx.persons.NumRows());
    for (size_t r = 0; r < fx.persons.NumRows(); ++r) {
      auto d = eval.Eval(*expr, fx.persons, r);
      if (!d.ok()) std::abort();
      out.push_back(std::move(*d));
    }
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(fx.persons.NumRows());
}
BENCHMARK(BM_Expr_Projection_Row)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_Expr_Projection_Vec(benchmark::State& state) {
  Fixture& fx = FixtureFor(static_cast<size_t>(state.range(0)));
  std::unique_ptr<Expr> expr = Parse("(n.age + n.score) / 2");
  Matcher matcher(MakeCtx(fx, true));
  ExprEvaluator eval = matcher.MakeEvaluator(fx.graph);
  auto prog = matcher.VecProgramFor(*expr, fx.persons, eval, fx.graph);
  if (prog == nullptr) std::abort();
  std::vector<size_t> rows(fx.persons.NumRows());
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  // Identity check against the row loop.
  {
    std::vector<Datum> vec_out;
    std::vector<uint8_t> fb;
    prog->EvalValues(fx.persons, rows.data(), rows.size(), &vec_out, &fb);
    for (size_t r = 0; r < rows.size(); ++r) {
      auto want = eval.Eval(*expr, fx.persons, r);
      if (!want.ok() || fb[r] != 0 || !(vec_out[r] == *want)) {
        std::fprintf(stderr, "projection results diverge at row %zu\n", r);
        std::abort();
      }
    }
  }
  for (auto _ : state) {
    std::vector<Datum> out;
    std::vector<uint8_t> fb;
    prog->EvalValues(fx.persons, rows.data(), rows.size(), &out, &fb);
    benchmark::DoNotOptimize(out);
  }
  state.counters["identical"] = 1;
  state.counters["rows"] = static_cast<double>(fx.persons.NumRows());
}
BENCHMARK(BM_Expr_Projection_Vec)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
