// CONSTRUCT and graph-algebra benchmarks: grouping/skolem throughput,
// aggregation (COUNT over groups), identity-preserving copies, and the
// Appendix A.5 set operations that make the language closed.
#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "eval/binding_ops.h"
#include "graph/graph_ops.h"
#include "snb/generator.h"
#include "snb/schema.h"

namespace gcore {
namespace {

struct Fixture {
  GraphCatalog catalog;
  std::unique_ptr<QueryEngine> engine;

  explicit Fixture(size_t persons) {
    snb::GeneratorOptions options;
    options.num_persons = persons;
    catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
    catalog.SetDefaultGraph("snb");
    engine = std::make_unique<QueryEngine>(&catalog);
  }
};

void BM_IdentityConstruct(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = f.engine->Execute("CONSTRUCT (n)-[e]->(m) MATCH (n)-[e]->(m)");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("bound identities: copy the whole graph through a query");
}
BENCHMARK(BM_IdentityConstruct)
    ->RangeMultiplier(4)
    ->Range(100, 1600)
    ->Unit(benchmark::kMillisecond);

void BM_GroupingSkolem(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = f.engine->Execute(
        "CONSTRUCT (x GROUP e :Emp {name:=e})<-[:worksAt]-(n) "
        "MATCH (n:Person {employer=e})");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("GROUP aggregation: company nodes via skolems (Q5 shape)");
}
BENCHMARK(BM_GroupingSkolem)
    ->RangeMultiplier(4)
    ->Range(100, 6400)
    ->Unit(benchmark::kMillisecond);

void BM_CountAggregatePerEdge(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = f.engine->Execute(
        "CONSTRUCT (n) SET n.degree := COUNT(*) "
        "MATCH (n:Person)-[:knows]->(m)");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("per-node COUNT(*) aggregation (Q10 shape)");
}
BENCHMARK(BM_CountAggregatePerEdge)
    ->RangeMultiplier(4)
    ->Range(100, 1600)
    ->Unit(benchmark::kMillisecond);

void BM_GraphSetOps(benchmark::State& state) {
  IdAllocator ids;
  snb::GeneratorOptions options;
  options.num_persons = static_cast<size_t>(state.range(0));
  PathPropertyGraph g1 = snb::Generate(options, &ids);
  options.seed = 43;  // overlapping id universes? no — disjoint graphs
  PathPropertyGraph g2 = g1;  // identical copy: worst-case overlap
  for (auto _ : state) {
    PathPropertyGraph u = GraphUnion(g1, g2);
    PathPropertyGraph i = GraphIntersect(g1, g2);
    PathPropertyGraph d = GraphMinus(g1, g2);
    benchmark::DoNotOptimize(u);
    benchmark::DoNotOptimize(i);
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel("UNION + INTERSECT + MINUS on fully-overlapping graphs");
}
BENCHMARK(BM_GraphSetOps)
    ->RangeMultiplier(4)
    ->Range(100, 1600)
    ->Unit(benchmark::kMillisecond);

void BM_BindingJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BindingTable a({"x", "y"});
  BindingTable b({"y", "z"});
  for (size_t i = 0; i < n; ++i) {
    benchmark::DoNotOptimize(
        a.AddRow({Datum::OfNode(NodeId(i)), Datum::OfNode(NodeId(i % 64))}));
    benchmark::DoNotOptimize(
        b.AddRow({Datum::OfNode(NodeId(i % 64)), Datum::OfNode(NodeId(i))}));
  }
  for (auto _ : state) {
    BindingTable j = TableJoin(a, b);
    benchmark::DoNotOptimize(j);
  }
  state.SetLabel("hash natural join, 64-way skewed key");
}
BENCHMARK(BM_BindingJoin)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_OptionalLeftJoin(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = f.engine->Execute(
        "CONSTRUCT (n) SET n.msgs := COUNT(*) "
        "MATCH (n:Person) OPTIONAL (msg)-[:has_creator]->(n)");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("OPTIONAL left outer join + aggregation");
}
BENCHMARK(BM_OptionalLeftJoin)
    ->RangeMultiplier(4)
    ->Range(100, 1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
