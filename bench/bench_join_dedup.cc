// Join + dedup trajectory bench (scripts/run_bench.sh →
// BENCH_join_dedup.json).
//
// Two workloads:
//  * a 20k×20k natural join whose inputs carry duplicate rows (the shape
//    intermediate tables take after column-dropping), comparing the seed
//    path (materialize every merged row, then a whole-table
//    Deduplicate() pass) against the fused construction of TableJoin and
//    the hash-partitioned morsel-parallel TableJoinParallel;
//  * a cyclic 3-chain (triangle) MATCH over a generated SNB graph, end
//    to end through the engine at morsel-parallelism 1 / 2 / 4.
#include <benchmark/benchmark.h>

#include <unordered_map>
#include <unordered_set>

#include "baselines.h"
#include "engine/engine.h"
#include "eval/binding_ops.h"
#include "snb/generator.h"

namespace gcore {
namespace {

using bench::MaterializeRows;
using bench::SeedRows;

// --- seed baseline ------------------------------------------------------------
// The pre-fused join, reconstructed verbatim over the seed's row-major
// storage (vector<BindingRow> — BindingTable is columnar since the
// vectorized-Ω refactor): hash-probe, merge every compatible pair into
// the output (duplicates included), then dedup in a second pass that
// re-hashes and copies every surviving row — exactly the constant
// factors the fused path removes.

size_t SeedSharedHash(const BindingRow& row,
                      const std::vector<std::pair<size_t, size_t>>& shared,
                      bool probe_side) {
  size_t h = 0;
  for (const auto& [ia, ib] : shared) {
    h ^= row[probe_side ? ia : ib].Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

struct SeedRowHash {
  size_t operator()(const BindingRow* row) const { return HashRow(*row); }
};
struct SeedRowEq {
  bool operator()(const BindingRow* a, const BindingRow* b) const {
    return *a == *b;
  }
};

void SeedDeduplicate(SeedRows* rows) {
  std::unordered_set<const BindingRow*, SeedRowHash, SeedRowEq> seen;
  seen.reserve(rows->size());
  SeedRows kept;
  kept.reserve(rows->size());
  for (auto& row : *rows) {
    if (seen.count(&row) > 0) continue;
    kept.push_back(row);
    seen.insert(&kept.back());
  }
  *rows = std::move(kept);
}

SeedRows SeedTableJoin(const SeedRows& a, const SeedRows& b,
                       const std::vector<std::pair<size_t, size_t>>& shared,
                       const std::vector<size_t>& b_extra) {
  SeedRows out;
  std::unordered_map<size_t, std::vector<size_t>> index;
  index.reserve(b.size());
  for (size_t r = 0; r < b.size(); ++r) {
    index[SeedSharedHash(b[r], shared, /*probe_side=*/false)].push_back(r);
  }
  for (const auto& ra : a) {
    auto it = index.find(SeedSharedHash(ra, shared, /*probe_side=*/true));
    if (it == index.end()) continue;
    for (size_t rb_idx : it->second) {
      const BindingRow& rb = b[rb_idx];
      bool compatible = true;
      for (const auto& [ia, ib] : shared) {
        if (!(ra[ia] == rb[ib])) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      BindingRow merged;
      merged.reserve(ra.size() + b_extra.size());
      merged.insert(merged.end(), ra.begin(), ra.end());
      for (size_t j : b_extra) merged.push_back(rb[j]);
      out.push_back(std::move(merged));
    }
  }
  SeedDeduplicate(&out);
  return out;
}

// --- workload construction ----------------------------------------------------

Datum N(uint64_t id) { return Datum::OfNode(NodeId(id)); }

/// a(x, y): `rows` rows, each distinct (x, y) pair appearing twice.
/// b(y, z): `rows` rows, each distinct (y, z) pair appearing twice.
/// The join matches rows/600 b-rows per a-row and every distinct merged
/// (x, y, z) appears 4 times — dedup does real work, as it does after
/// the executor's Project drops columns.
void BuildJoinInputs(size_t rows, BindingTable* a, BindingTable* b) {
  *a = BindingTable({"x", "y"});
  for (uint64_t i = 0; i < rows; ++i) {
    Status st = a->AddRow({N(i % (rows / 4)), N(100000 + i % 600)});
    (void)st;
  }
  *b = BindingTable({"y", "z"});
  for (uint64_t j = 0; j < rows; ++j) {
    Status st = b->AddRow({N(100000 + j % 600), N(200000 + j % (rows / 4))});
    (void)st;
  }
}

void BM_JoinDedup_Seed(benchmark::State& state) {
  BindingTable a, b;
  BuildJoinInputs(static_cast<size_t>(state.range(0)), &a, &b);
  // Row-major inputs are materialized outside the timed loop: the seed
  // stored its tables this way, so only join + dedup are measured.
  const SeedRows a_rows = MaterializeRows(a);
  const SeedRows b_rows = MaterializeRows(b);
  std::vector<std::pair<size_t, size_t>> shared;
  std::vector<size_t> b_extra;
  for (size_t i = 0; i < a.columns().size(); ++i) {
    const size_t j = b.ColumnIndex(a.columns()[i]);
    if (j != BindingTable::kNpos) shared.emplace_back(i, j);
  }
  for (size_t j = 0; j < b.columns().size(); ++j) {
    if (a.ColumnIndex(b.columns()[j]) == BindingTable::kNpos) {
      b_extra.push_back(j);
    }
  }
  size_t out_rows = 0;
  for (auto _ : state) {
    SeedRows j = SeedTableJoin(a_rows, b_rows, shared, b_extra);
    out_rows = j.size();
    benchmark::DoNotOptimize(j);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_JoinDedup_Seed)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_JoinDedup_Fused(benchmark::State& state) {
  BindingTable a, b;
  BuildJoinInputs(static_cast<size_t>(state.range(0)), &a, &b);
  size_t out_rows = 0;
  for (auto _ : state) {
    BindingTable j = TableJoin(a, b);
    out_rows = j.NumRows();
    benchmark::DoNotOptimize(j);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_JoinDedup_Fused)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_JoinDedup_FusedParallel(benchmark::State& state) {
  BindingTable a, b;
  BuildJoinInputs(20000, &a, &b);
  const size_t degree = static_cast<size_t>(state.range(0));
  size_t out_rows = 0;
  for (auto _ : state) {
    BindingTable j = TableJoinParallel(a, b, degree);
    out_rows = j.NumRows();
    benchmark::DoNotOptimize(j);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
// Process CPU time: the work happens on worker threads, and wall-clock
// speedup needs real cores (this trajectory is recorded on whatever the
// CI/container offers — see BENCH_join_dedup.json context block).
BENCHMARK(BM_JoinDedup_FusedParallel)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- cyclic 3-chain through the engine ----------------------------------------

void BM_ChainTriangle(benchmark::State& state) {
  GraphCatalog catalog;
  snb::GeneratorOptions options;
  options.num_persons = 600;
  options.avg_knows_degree = 10.0;
  catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
  catalog.SetDefaultGraph("snb");

  QueryEngine engine(&catalog);
  engine.set_parallelism(static_cast<size_t>(state.range(0)));
  const std::string query =
      "SELECT COUNT(*) AS triangles "
      "MATCH (a:Person)-[:knows]->(b), (b:Person)-[:knows]->(c), "
      "(c:Person)-[:knows]->(a)";
  size_t rows = 0;
  for (auto _ : state) {
    auto r = engine.Execute(query);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    rows = r->table->NumRows();
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ChainTriangle)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
