// Benchmarks every guided-tour query (Section 3) end to end — parse +
// plan + evaluate — on the Figure 4 toy instance and on a generated
// SNB graph, and prints the result shape of each query on the toy data
// (the golden values of EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "paper_queries.h"
#include "parser/parser.h"
#include "snb/generator.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

using bench::kPaperQueries;

/// Fresh catalog with toy data; Q11/Q12 need the views of Q10/Q11, so the
/// whole prefix of view-defining queries runs first.
void PrepareCatalog(GraphCatalog* catalog, const char* upto_id) {
  snb::RegisterToyData(catalog);
  QueryEngine engine(catalog);
  for (const auto& pq : kPaperQueries) {
    if (std::string(pq.id) == upto_id) break;
    if (std::string(pq.id) == "Q10" || std::string(pq.id) == "Q11") {
      auto r = engine.Execute(pq.text);
      if (!r.ok()) {
        std::fprintf(stderr, "prepare %s: %s\n", pq.id,
                     r.status().ToString().c_str());
      }
    }
  }
}

void BM_GuidedTourQuery(benchmark::State& state) {
  const auto& pq = kPaperQueries[static_cast<size_t>(state.range(0))];
  GraphCatalog catalog;
  PrepareCatalog(&catalog, pq.id);
  QueryEngine engine(&catalog);

  size_t nodes = 0, edges = 0, paths = 0, rows = 0;
  for (auto _ : state) {
    auto r = engine.Execute(pq.text);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    if (r->IsGraph()) {
      nodes = r->graph->NumNodes();
      edges = r->graph->NumEdges();
      paths = r->graph->NumPaths();
    } else {
      rows = r->table->NumRows();
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(pq.id) + " (lines " + pq.lines + ")");
  state.counters["out_nodes"] = static_cast<double>(nodes);
  state.counters["out_edges"] = static_cast<double>(edges);
  state.counters["out_paths"] = static_cast<double>(paths);
  state.counters["out_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_GuidedTourQuery)
    ->DenseRange(0, static_cast<int>(std::size(kPaperQueries)) - 1)
    ->Unit(benchmark::kMicrosecond);

/// The same language features on a generated SNB graph (SF-equivalent
/// workload): pattern match, aggregation, reachability, k-shortest.
void BM_SnbWorkload(benchmark::State& state) {
  static const char* kQueries[] = {
      // pattern matching + filter
      "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'",
      // graph aggregation
      "CONSTRUCT (x GROUP e :Emp {name:=e}) MATCH (n:Person {employer=e})",
      // two-hop join
      "CONSTRUCT (n)-[:coloc]->(m) "
      "MATCH (n:Person)-[:isLocatedIn]->(c)<-[:isLocatedIn]-(m:Person) "
      "WHERE n.firstName = 'John'",
      // reachability from one person
      "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe'",
  };
  const char* query = kQueries[state.range(0)];

  GraphCatalog catalog;
  snb::GeneratorOptions options;
  options.num_persons = 800;
  catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
  catalog.SetDefaultGraph("snb");
  QueryEngine engine(&catalog);

  for (auto _ : state) {
    auto r = engine.Execute(query);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  static const char* kLabels[] = {"filter_match", "aggregation",
                                  "two_hop_join", "reachability"};
  state.SetLabel(std::string("snb800/") + kLabels[state.range(0)]);
}
BENCHMARK(BM_SnbWorkload)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// Parse-only throughput over the full query corpus (the "parsing tooling
/// heavier" axis of the reproduction).
void BM_ParseCorpus(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& pq : kPaperQueries) {
      auto q = ParseQuery(pq.text);
      benchmark::DoNotOptimize(q);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(std::size(kPaperQueries)));
}
BENCHMARK(BM_ParseCorpus)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
