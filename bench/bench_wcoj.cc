// Worst-case-optimal multiway join trajectory bench (scripts/run_bench.sh
// → BENCH_wcoj.json).
//
// Triangle count and diamond motif queries over a ring-of-communities
// toy graph (SNB-like: dense local :knows neighborhoods, bounded degree,
// plenty of closed motifs), each run through the engine twice per
// parallelism: enable_multiway=false (binary left-deep HashJoins — the
// pre-rewrite planner) vs enable_multiway=true (the cycle collapses into
// one MultiwayExpand evaluated by sorted adjacency intersection). The
// binary plan materializes every wedge (Θ(N·d²) rows) before the closing
// join can discard it; the multiway operator intersects the two incident
// neighbor lists instead and only materializes actual motif bindings.
// The acceptance numbers track the single-thread (parallelism 1) ratio;
// the recorded container has 1 CPU, so higher degrees validate the
// machinery rather than wall-clock scaling.
#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "graph/graph_builder.h"

namespace gcore {
namespace {

/// Triangle workload: 250 communities of 20 :Person nodes, member i
/// pointing at the next six (mod community) with :knows, plus 100
/// disjoint directed triangles. 5300 nodes, 30300 edges, max degree 6.
/// The directed ring steps (1..6, community 20) never wrap, so the
/// binary plan's wedge intermediate (Σ in·out ≈ 180k rows) dwarfs the
/// ~600 actual triangle bindings — the Θ(N·d²) vs output gap the
/// multiway intersection exists to close.
void RegisterTriangleGraph(GraphCatalog* catalog) {
  GraphBuilder b("tri_communities", catalog->ids());
  b.EnableStatsCollection();
  for (int c = 0; c < 250; ++c) {
    std::vector<NodeId> members;
    members.reserve(20);
    for (int i = 0; i < 20; ++i) members.push_back(b.AddNode({"Person"}));
    for (int i = 0; i < 20; ++i) {
      for (int step = 1; step <= 6; ++step) {
        b.AddEdge(members[i], members[(i + step) % 20], "knows");
      }
    }
  }
  for (int t = 0; t < 100; ++t) {
    const NodeId t1 = b.AddNode({"Person"});
    const NodeId t2 = b.AddNode({"Person"});
    const NodeId t3 = b.AddNode({"Person"});
    b.AddEdge(t1, t2, "knows");
    b.AddEdge(t2, t3, "knows");
    b.AddEdge(t3, t1, "knows");
  }
  GraphStats stats = b.Stats();
  catalog->RegisterGraph("tri_communities", b.Build(), std::move(stats));
  catalog->SetDefaultGraph("tri_communities");
}

/// Diamond workload: 500 communities of 10, steps 1..3 — sparser, so the
/// ~95k diamond bindings stay comparable to the wedge intermediates (the
/// honest output-bound case of the ablation).
void RegisterDiamondGraph(GraphCatalog* catalog) {
  GraphBuilder b("dia_communities", catalog->ids());
  b.EnableStatsCollection();
  for (int c = 0; c < 500; ++c) {
    std::vector<NodeId> members;
    members.reserve(10);
    for (int i = 0; i < 10; ++i) members.push_back(b.AddNode({"Person"}));
    for (int i = 0; i < 10; ++i) {
      for (int step = 1; step <= 3; ++step) {
        b.AddEdge(members[i], members[(i + step) % 10], "knows");
      }
    }
  }
  GraphStats stats = b.Stats();
  catalog->RegisterGraph("dia_communities", b.Build(), std::move(stats));
  catalog->SetDefaultGraph("dia_communities");
}

constexpr const char* kTriangle =
    "SELECT COUNT(*) AS motifs "
    "MATCH (a:Person)-[:knows]->(b:Person), (b)-[:knows]->(c:Person), "
    "(c)-[:knows]->(a)";
constexpr const char* kDiamond =
    "SELECT COUNT(*) AS motifs "
    "MATCH (a:Person)-[:knows]->(b:Person), (b)-[:knows]->(c:Person), "
    "(a)-[:knows]->(d:Person), (d)-[:knows]->(c)";

void RunMotif(benchmark::State& state, const char* query, bool multiway) {
  GraphCatalog catalog;
  if (query == kTriangle) {
    RegisterTriangleGraph(&catalog);
  } else {
    RegisterDiamondGraph(&catalog);
  }
  QueryEngine engine(&catalog);
  engine.set_enable_multiway(multiway);
  engine.set_parallelism(static_cast<size_t>(state.range(0)));
  double motifs = 0.0;
  for (auto _ : state) {
    auto r = engine.Execute(query);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    motifs = r->table->At(0, 0).NumericAsDouble();
    benchmark::DoNotOptimize(r);
  }
  // Both modes must count the same motifs — the differential suite pins
  // this; the counter makes it visible in the archived JSON too.
  state.counters["motifs"] = motifs;
}

void BM_TriangleBinary(benchmark::State& state) {
  RunMotif(state, kTriangle, /*multiway=*/false);
}
void BM_TriangleMultiway(benchmark::State& state) {
  RunMotif(state, kTriangle, /*multiway=*/true);
}
void BM_DiamondBinary(benchmark::State& state) {
  RunMotif(state, kDiamond, /*multiway=*/false);
}
void BM_DiamondMultiway(benchmark::State& state) {
  RunMotif(state, kDiamond, /*multiway=*/true);
}

BENCHMARK(BM_TriangleBinary)
    ->Arg(1)
    ->Arg(2)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TriangleMultiway)
    ->Arg(1)
    ->Arg(2)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DiamondBinary)
    ->Arg(1)
    ->Arg(2)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DiamondMultiway)
    ->Arg(1)
    ->Arg(2)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
