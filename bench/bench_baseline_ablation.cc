// Ablation: why the paper's semantics choices matter (DESIGN.md S16).
//
//   1. arbitrary-walk shortest via product automaton   — polynomial
//   2. naive enumeration of all conforming walks       — exponential
//   3. simple-path semantics (Cypher 9 / NP-complete)  — backtracking
//
// The product search scales with graph size; the baselines hit their
// expansion budgets already on small instances. The `expansions` counter
// makes the blow-up visible independent of wall-clock noise.
#include <benchmark/benchmark.h>

#include "baselines.h"

#include "engine/engine.h"
#include "graph/catalog.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"
#include "eval/matcher.h"
#include "parser/parser.h"
#include "paths/k_shortest.h"
#include "snb/generator.h"
#include "snb/schema.h"

namespace gcore {
namespace {

struct AblationFixture {
  IdAllocator ids;
  PathPropertyGraph graph;
  std::unique_ptr<AdjacencyIndex> adj;
  NodeId src;
  NodeId dst;
  Nfa nfa;

  explicit AblationFixture(size_t persons)
      : nfa(Compile()) {
    snb::GeneratorOptions options;
    options.num_persons = persons;
    graph = snb::Generate(options, &ids);
    adj = std::make_unique<AdjacencyIndex>(graph);
    graph.ForEachNode([&](NodeId n) {
      if (!graph.Labels(n).Contains(snb::kPerson)) return;
      if (!src.valid()) src = n;
      dst = n;
    });
  }

  static Nfa Compile() {
    auto r = ParseRpq(":knows*");
    if (!r.ok()) std::abort();
    return Nfa::Compile(**r);
  }

  PathSearchContext Ctx() const {
    PathSearchContext ctx;
    ctx.adj = adj.get();
    ctx.nfa = &nfa;
    return ctx;
  }
};

constexpr uint64_t kBudget = 2'000'000;

void BM_ProductShortest(benchmark::State& state) {
  AblationFixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = ShortestPath(f.Ctx(), f.src, f.dst);
    if (!r.ok()) state.SkipWithError("product search failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("polynomial product-automaton search (G-CORE semantics)");
}
BENCHMARK(BM_ProductShortest)
    ->RangeMultiplier(2)
    ->Range(50, 1600)
    ->Unit(benchmark::kMillisecond);

void BM_NaiveWalkEnumeration(benchmark::State& state) {
  AblationFixture f(static_cast<size_t>(state.range(0)));
  const size_t max_hops = 8;
  uint64_t expansions = 0;
  bool exhausted = false;
  for (auto _ : state) {
    auto stats = bench::EnumerateConformingWalks(*f.adj, f.nfa, f.src, f.dst,
                                                 max_hops, kBudget);
    expansions = stats.expansions;
    exhausted = stats.budget_exhausted;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["expansions"] = static_cast<double>(expansions);
  state.SetLabel(exhausted
                     ? "EXPONENTIAL: 2M-expansion budget exhausted (<=8 hops)"
                     : "all walks enumerated (<=8 hops)");
}
BENCHMARK(BM_NaiveWalkEnumeration)
    ->RangeMultiplier(2)
    ->Range(50, 400)
    ->Unit(benchmark::kMillisecond);

void BM_SimplePathSemantics(benchmark::State& state) {
  AblationFixture f(static_cast<size_t>(state.range(0)));
  uint64_t expansions = 0;
  bool exhausted = false;
  for (auto _ : state) {
    bench::EnumerationStats stats;
    auto best =
        bench::ShortestSimplePath(*f.adj, f.nfa, f.src, f.dst, kBudget,
                                  &stats);
    expansions = stats.expansions;
    exhausted = stats.budget_exhausted;
    benchmark::DoNotOptimize(best);
  }
  state.counters["expansions"] = static_cast<double>(expansions);
  state.SetLabel(exhausted
                     ? "NP-hard backtracking: budget exhausted"
                     : "simple-path backtracking completed");
}
BENCHMARK(BM_SimplePathSemantics)
    ->RangeMultiplier(2)
    ->Range(50, 400)
    ->Unit(benchmark::kMillisecond);

// --- selection-pushdown ablation (DESIGN.md §5 design choices) ------------------

void BM_SelectivePathQuery(benchmark::State& state, bool pushdown) {
  GraphCatalog catalog;
  snb::GeneratorOptions options;
  options.num_persons = static_cast<size_t>(state.range(0));
  catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
  catalog.SetDefaultGraph("snb");

  auto parsed = ParseQuery(
      "CONSTRUCT (m) MATCH (n:Person)-/p <:knows*> COST c/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe'");
  if (!parsed.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  const MatchClause& match = *(*parsed)->body->basic->match;

  MatcherContext ctx;
  ctx.catalog = &catalog;
  ctx.default_graph = "snb";
  ctx.enable_pushdown = pushdown;
  for (auto _ : state) {
    Matcher matcher(ctx);
    auto bindings = matcher.EvalMatchClause(match);
    if (!bindings.ok()) {
      state.SkipWithError(bindings.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(bindings);
  }
  state.SetLabel(pushdown
                     ? "single-var WHERE conjuncts pushed before path hop"
                     : "NO pushdown: shortest paths from every person");
}

void BM_PushdownOn(benchmark::State& state) {
  BM_SelectivePathQuery(state, true);
}
void BM_PushdownOff(benchmark::State& state) {
  BM_SelectivePathQuery(state, false);
}
BENCHMARK(BM_PushdownOn)
    ->RangeMultiplier(2)
    ->Range(50, 400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PushdownOff)
    ->RangeMultiplier(2)
    ->Range(50, 400)
    ->Unit(benchmark::kMillisecond);

// --- statistics ablation (BENCH_stats_ablation.json) -----------------------
//
// Stats-driven cardinality estimation vs the seed's constant
// selectivities. The skewed fixture makes the two models rank the
// query's chains differently: the per-column model knows the 2-valued
// flag keeps *half* the :A scan (≈0.39n; constants guess 0.1n) and that
// only ≈0.23n expansions reach a :B target, so it probes with the
// expansion chain — which really is the smaller side (0.25n rows vs
// 0.5n). The constants rank the filtered scan first and probe with
// twice the rows. The estimator-accuracy tests pin which model is
// right; this records what the mistake costs end-to-end.

/// |A| = n flag-carrying nodes, |B| = 0.3n targets; one :e edge per A,
/// every fourth landing on a :B node (the rest stay inside the A pool).
struct StatsFixture {
  GraphCatalog catalog;

  explicit StatsFixture(size_t n) {
    GraphBuilder b("skew", catalog.ids());
    b.EnableStatsCollection();
    std::vector<NodeId> as;
    std::vector<NodeId> bs;
    for (size_t i = 0; i < n; ++i) {
      as.push_back(
          b.AddNode({"A"}, {{"flag", static_cast<int64_t>(i % 2)}}));
    }
    for (size_t i = 0; i < 3 * n / 10; ++i) bs.push_back(b.AddNode({"B"}));
    for (size_t i = 0; i < n; ++i) {
      if (i % 4 == 0 && !bs.empty()) {
        b.AddEdge(as[i], bs[i % bs.size()], "e");
      } else {
        b.AddEdge(as[i], as[(i + 7) % n], "e");
      }
    }
    GraphStats stats = b.Stats();
    catalog.RegisterGraph("skew", b.Build(), std::move(stats));
    catalog.SetDefaultGraph("skew");
  }
};

void BM_StatsAblationQuery(benchmark::State& state, bool use_column_stats) {
  StatsFixture f(static_cast<size_t>(state.range(0)));
  QueryEngine engine(&f.catalog);
  engine.set_use_column_stats(use_column_stats);
  auto parsed = ParseQuery(
      "CONSTRUCT (a) MATCH (a:A {flag=1}), (a:A)-[:e]->(y:B)");
  if (!parsed.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    auto result = engine.Execute(**parsed);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(use_column_stats
                     ? "per-column stats: the truly smaller expansion "
                       "chain (0.25n rows) probes"
                     : "seed constants: the misranked filtered scan "
                       "(0.5n rows) probes");
}

void BM_StatsOrderingOn(benchmark::State& state) {
  BM_StatsAblationQuery(state, true);
}
void BM_StatsOrderingOff(benchmark::State& state) {
  BM_StatsAblationQuery(state, false);
}
BENCHMARK(BM_StatsOrderingOn)
    ->RangeMultiplier(2)
    ->Range(2000, 16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StatsOrderingOff)
    ->RangeMultiplier(2)
    ->Range(2000, 16000)
    ->Unit(benchmark::kMillisecond);

/// Cost of the statistics themselves: the full collection scan (what
/// GraphCatalog::Stats runs lazily on first use per graph) on generated
/// SNB data — the price of having real selectivities at all.
void BM_StatsCollect(benchmark::State& state) {
  IdAllocator ids;
  snb::GeneratorOptions options;
  options.num_persons = static_cast<size_t>(state.range(0));
  PathPropertyGraph graph = snb::Generate(options, &ids);
  for (auto _ : state) {
    GraphStats stats = GraphStats::Collect(graph);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["nodes"] = static_cast<double>(graph.NumNodes());
  state.counters["edges"] = static_cast<double>(graph.NumEdges());
  state.SetLabel("one linear scan: label counts, per-key distinct/range, "
                 "degree histograms");
}
BENCHMARK(BM_StatsCollect)
    ->RangeMultiplier(2)
    ->Range(200, 1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
