// Ablation: why the paper's semantics choices matter (DESIGN.md S16).
//
//   1. arbitrary-walk shortest via product automaton   — polynomial
//   2. naive enumeration of all conforming walks       — exponential
//   3. simple-path semantics (Cypher 9 / NP-complete)  — backtracking
//
// The product search scales with graph size; the baselines hit their
// expansion budgets already on small instances. The `expansions` counter
// makes the blow-up visible independent of wall-clock noise.
#include <benchmark/benchmark.h>

#include "baselines.h"

#include "graph/catalog.h"
#include "eval/matcher.h"
#include "parser/parser.h"
#include "paths/k_shortest.h"
#include "snb/generator.h"
#include "snb/schema.h"

namespace gcore {
namespace {

struct AblationFixture {
  IdAllocator ids;
  PathPropertyGraph graph;
  std::unique_ptr<AdjacencyIndex> adj;
  NodeId src;
  NodeId dst;
  Nfa nfa;

  explicit AblationFixture(size_t persons)
      : nfa(Compile()) {
    snb::GeneratorOptions options;
    options.num_persons = persons;
    graph = snb::Generate(options, &ids);
    adj = std::make_unique<AdjacencyIndex>(graph);
    graph.ForEachNode([&](NodeId n) {
      if (!graph.Labels(n).Contains(snb::kPerson)) return;
      if (!src.valid()) src = n;
      dst = n;
    });
  }

  static Nfa Compile() {
    auto r = ParseRpq(":knows*");
    if (!r.ok()) std::abort();
    return Nfa::Compile(**r);
  }

  PathSearchContext Ctx() const {
    PathSearchContext ctx;
    ctx.adj = adj.get();
    ctx.nfa = &nfa;
    return ctx;
  }
};

constexpr uint64_t kBudget = 2'000'000;

void BM_ProductShortest(benchmark::State& state) {
  AblationFixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = ShortestPath(f.Ctx(), f.src, f.dst);
    if (!r.ok()) state.SkipWithError("product search failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("polynomial product-automaton search (G-CORE semantics)");
}
BENCHMARK(BM_ProductShortest)
    ->RangeMultiplier(2)
    ->Range(50, 1600)
    ->Unit(benchmark::kMillisecond);

void BM_NaiveWalkEnumeration(benchmark::State& state) {
  AblationFixture f(static_cast<size_t>(state.range(0)));
  const size_t max_hops = 8;
  uint64_t expansions = 0;
  bool exhausted = false;
  for (auto _ : state) {
    auto stats = bench::EnumerateConformingWalks(*f.adj, f.nfa, f.src, f.dst,
                                                 max_hops, kBudget);
    expansions = stats.expansions;
    exhausted = stats.budget_exhausted;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["expansions"] = static_cast<double>(expansions);
  state.SetLabel(exhausted
                     ? "EXPONENTIAL: 2M-expansion budget exhausted (<=8 hops)"
                     : "all walks enumerated (<=8 hops)");
}
BENCHMARK(BM_NaiveWalkEnumeration)
    ->RangeMultiplier(2)
    ->Range(50, 400)
    ->Unit(benchmark::kMillisecond);

void BM_SimplePathSemantics(benchmark::State& state) {
  AblationFixture f(static_cast<size_t>(state.range(0)));
  uint64_t expansions = 0;
  bool exhausted = false;
  for (auto _ : state) {
    bench::EnumerationStats stats;
    auto best =
        bench::ShortestSimplePath(*f.adj, f.nfa, f.src, f.dst, kBudget,
                                  &stats);
    expansions = stats.expansions;
    exhausted = stats.budget_exhausted;
    benchmark::DoNotOptimize(best);
  }
  state.counters["expansions"] = static_cast<double>(expansions);
  state.SetLabel(exhausted
                     ? "NP-hard backtracking: budget exhausted"
                     : "simple-path backtracking completed");
}
BENCHMARK(BM_SimplePathSemantics)
    ->RangeMultiplier(2)
    ->Range(50, 400)
    ->Unit(benchmark::kMillisecond);

// --- selection-pushdown ablation (DESIGN.md §5 design choices) ------------------

void BM_SelectivePathQuery(benchmark::State& state, bool pushdown) {
  GraphCatalog catalog;
  snb::GeneratorOptions options;
  options.num_persons = static_cast<size_t>(state.range(0));
  catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
  catalog.SetDefaultGraph("snb");

  auto parsed = ParseQuery(
      "CONSTRUCT (m) MATCH (n:Person)-/p <:knows*> COST c/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe'");
  if (!parsed.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  const MatchClause& match = *(*parsed)->body->basic->match;

  MatcherContext ctx;
  ctx.catalog = &catalog;
  ctx.default_graph = "snb";
  ctx.enable_pushdown = pushdown;
  for (auto _ : state) {
    Matcher matcher(ctx);
    auto bindings = matcher.EvalMatchClause(match);
    if (!bindings.ok()) {
      state.SkipWithError(bindings.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(bindings);
  }
  state.SetLabel(pushdown
                     ? "single-var WHERE conjuncts pushed before path hop"
                     : "NO pushdown: shortest paths from every person");
}

void BM_PushdownOn(benchmark::State& state) {
  BM_SelectivePathQuery(state, true);
}
void BM_PushdownOff(benchmark::State& state) {
  BM_SelectivePathQuery(state, false);
}
BENCHMARK(BM_PushdownOn)
    ->RangeMultiplier(2)
    ->Range(50, 400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PushdownOff)
    ->RangeMultiplier(2)
    ->Range(50, 400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcore

BENCHMARK_MAIN();
