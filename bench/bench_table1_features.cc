// Regenerates Table 1 ("Overview of G-CORE features and their line
// occurrences in the example queries") and the feature column of Figure 1
// from our own parser + feature detector, run over the paper's example
// queries. Every feature the paper tables list must be detected in the
// queries the paper attributes it to — this is the coverage proof that
// gcore-cpp implements the full language surface.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/features.h"
#include "paper_queries.h"
#include "parser/parser.h"

namespace gcore {
namespace {

int RunReport() {
  using bench::kPaperQueries;

  // feature -> list of query ids (Table 1's right column, regenerated).
  std::map<QueryFeature, std::vector<std::string>> occurrences;
  int parse_failures = 0;

  for (const auto& pq : kPaperQueries) {
    auto query = ParseQuery(pq.text);
    if (!query.ok()) {
      std::fprintf(stderr, "FAILED to parse %s (lines %s): %s\n", pq.id,
                   pq.lines, query.status().ToString().c_str());
      ++parse_failures;
      continue;
    }
    for (QueryFeature f : DetectFeatures(**query)) {
      occurrences[f].push_back(pq.id);
    }
  }

  std::printf("Table 1 (regenerated): G-CORE features and the example\n");
  std::printf("queries they occur in (parsed and detected by gcore-cpp)\n");
  std::printf("%-45s %s\n", "Feature", "Example queries");
  std::printf("%s\n", std::string(78, '-').c_str());

  auto section = [&](const char* title,
                     std::initializer_list<QueryFeature> features) {
    std::printf("%s\n", title);
    for (QueryFeature f : features) {
      std::string queries;
      for (const auto& id : occurrences[f]) {
        if (!queries.empty()) queries += ", ";
        queries += id;
      }
      if (queries.empty()) queries = "-";
      std::printf("  %-43s %s\n", QueryFeatureToString(f), queries.c_str());
    }
  };

  section("Matching",
          {QueryFeature::kHomomorphicMatching, QueryFeature::kLiteralMatching,
           QueryFeature::kKShortestPaths, QueryFeature::kAllShortestPaths,
           QueryFeature::kWeightedShortestPaths,
           QueryFeature::kOptionalMatching});
  section("Querying",
          {QueryFeature::kMultipleGraphs, QueryFeature::kQueriesOnPaths,
           QueryFeature::kFilteringMatches,
           QueryFeature::kFilteringPathExpressions, QueryFeature::kValueJoins,
           QueryFeature::kCartesianProduct, QueryFeature::kListMembership});
  section("Subqueries",
          {QueryFeature::kGraphSetOperations,
           QueryFeature::kImplicitExistential,
           QueryFeature::kExplicitExistential});
  section("Construction",
          {QueryFeature::kGraphConstruction, QueryFeature::kGraphAggregation,
           QueryFeature::kGraphProjection, QueryFeature::kGraphViews,
           QueryFeature::kPropertyAddition});
  section("Extensions (Section 5)",
          {QueryFeature::kTabularProjection, QueryFeature::kTabularImport});

  // Figure 1's feature column: which of the TUC-requested capabilities the
  // implementation covers.
  std::printf("\nFigure 1 (feature column): LDBC TUC requested features\n");
  std::printf("%-28s %-10s %s\n", "Used feature (Fig. 1)", "TUC count",
              "covered by gcore-cpp module");
  std::printf("%s\n", std::string(78, '-').c_str());
  std::printf("%-28s %-10d %s\n", "graph reachability", 36,
              "paths/product_bfs (-/<:l*>/-> reachability)");
  std::printf("%-28s %-10d %s\n", "graph construction", 34,
              "eval/constructor (CONSTRUCT)");
  std::printf("%-28s %-10d %s\n", "pattern matching", 32,
              "eval/matcher (MATCH homomorphic)");
  std::printf("%-28s %-10d %s\n", "shortest path search", 19,
              "paths/k_shortest (k SHORTEST, ~view COST)");
  std::printf("%-28s %-10d %s\n", "graph clustering", 14,
              "out of scope (analytics, not query language; see DESIGN.md)");

  if (parse_failures > 0) {
    std::fprintf(stderr, "\n%d paper queries failed to parse!\n",
                 parse_failures);
    return 1;
  }
  std::printf("\nAll %zu paper queries parsed; %zu distinct features "
              "detected.\n",
              std::size(kPaperQueries), occurrences.size());
  return 0;
}

}  // namespace
}  // namespace gcore

int main() { return gcore::RunReport(); }
