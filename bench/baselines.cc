#include "baselines.h"

#include <vector>

namespace gcore {
namespace bench {

SeedRows MaterializeRows(const BindingTable& table) {
  SeedRows rows;
  rows.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) rows.push_back(table.Row(r));
  return rows;
}

namespace {

/// NFA states reachable from `states` via zero-width transitions at
/// `node`.
void ZeroWidthClosure(const Nfa& nfa, const PathPropertyGraph& graph,
                      NodeId node, std::vector<bool>* states) {
  const LabelSet& labels = graph.Labels(node);
  bool changed = true;
  while (changed) {
    changed = false;
    for (NfaStateId s = 0; s < nfa.num_states(); ++s) {
      if (!(*states)[s]) continue;
      for (const NfaTransition& t : nfa.TransitionsFrom(s)) {
        const bool zero_width =
            t.type == NfaTransition::Type::kEpsilon ||
            (t.type == NfaTransition::Type::kNodeTest &&
             labels.Contains(t.label));
        if (zero_width && !(*states)[t.target]) {
          (*states)[t.target] = true;
          changed = true;
        }
      }
    }
  }
}

struct WalkEnumerator {
  const AdjacencyIndex& adj;
  const Nfa& nfa;
  NodeId dst;
  size_t max_hops;
  uint64_t budget;
  EnumerationStats stats;

  void Recurse(DenseNodeIndex node, const std::vector<bool>& states,
               size_t hops) {
    if (stats.expansions >= budget) {
      stats.budget_exhausted = true;
      return;
    }
    ++stats.expansions;
    if (adj.IdOf(node) == dst && states[nfa.accept()]) {
      ++stats.walks_found;
    }
    if (hops == max_hops) return;
    // Expand every edge transition from every live state.
    for (NfaStateId q = 0; q < nfa.num_states(); ++q) {
      if (!states[q]) continue;
      for (const NfaTransition& t : nfa.TransitionsFrom(q)) {
        auto follow = [&](const AdjacencyEntry* begin,
                          const AdjacencyEntry* end) {
          for (const AdjacencyEntry* e = begin; e != end; ++e) {
            if (t.type != NfaTransition::Type::kAnyEdge &&
                !adj.graph().Labels(e->edge).Contains(t.label)) {
              continue;
            }
            std::vector<bool> next(nfa.num_states(), false);
            next[t.target] = true;
            ZeroWidthClosure(nfa, adj.graph(), adj.IdOf(e->neighbor), &next);
            Recurse(e->neighbor, next, hops + 1);
            if (stats.budget_exhausted) return;
          }
        };
        if (t.type == NfaTransition::Type::kAnyEdge ||
            t.type == NfaTransition::Type::kEdgeForward) {
          auto [b, e] = adj.Out(node);
          follow(b, e);
        }
        if (t.type == NfaTransition::Type::kAnyEdge ||
            t.type == NfaTransition::Type::kEdgeBackward) {
          auto [b, e] = adj.In(node);
          follow(b, e);
        }
        if (stats.budget_exhausted) return;
      }
    }
  }
};

struct SimplePathSearch {
  const AdjacencyIndex& adj;
  const Nfa& nfa;
  NodeId dst;
  uint64_t budget;
  EnumerationStats stats;
  std::vector<bool> visited;
  std::optional<size_t> best;

  void Recurse(DenseNodeIndex node, const std::vector<bool>& states,
               size_t hops) {
    if (stats.expansions >= budget) {
      stats.budget_exhausted = true;
      return;
    }
    ++stats.expansions;
    if (best.has_value() && hops >= *best) return;  // branch and bound
    if (adj.IdOf(node) == dst && states[nfa.accept()]) {
      best = hops;
      return;
    }
    visited[node] = true;
    for (NfaStateId q = 0; q < nfa.num_states() && !stats.budget_exhausted;
         ++q) {
      if (!states[q]) continue;
      for (const NfaTransition& t : nfa.TransitionsFrom(q)) {
        auto follow = [&](const AdjacencyEntry* begin,
                          const AdjacencyEntry* end) {
          for (const AdjacencyEntry* e = begin; e != end; ++e) {
            if (visited[e->neighbor]) continue;  // simple-path restriction
            if (t.type != NfaTransition::Type::kAnyEdge &&
                !adj.graph().Labels(e->edge).Contains(t.label)) {
              continue;
            }
            std::vector<bool> next(nfa.num_states(), false);
            next[t.target] = true;
            ZeroWidthClosure(nfa, adj.graph(), adj.IdOf(e->neighbor), &next);
            Recurse(e->neighbor, next, hops + 1);
            if (stats.budget_exhausted) return;
          }
        };
        if (t.type == NfaTransition::Type::kAnyEdge ||
            t.type == NfaTransition::Type::kEdgeForward) {
          auto [b, e] = adj.Out(node);
          follow(b, e);
        }
        if (t.type == NfaTransition::Type::kAnyEdge ||
            t.type == NfaTransition::Type::kEdgeBackward) {
          auto [b, e] = adj.In(node);
          follow(b, e);
        }
        if (stats.budget_exhausted) break;
      }
    }
    visited[node] = false;
  }
};

std::vector<bool> StartStates(const Nfa& nfa, const PathPropertyGraph& graph,
                              NodeId src) {
  std::vector<bool> states(nfa.num_states(), false);
  states[nfa.start()] = true;
  ZeroWidthClosure(nfa, graph, src, &states);
  return states;
}

}  // namespace

EnumerationStats EnumerateConformingWalks(const AdjacencyIndex& adj,
                                          const Nfa& nfa, NodeId src,
                                          NodeId dst, size_t max_hops,
                                          uint64_t budget) {
  WalkEnumerator enumerator{adj, nfa, dst, max_hops, budget, {}};
  enumerator.Recurse(adj.IndexOf(src), StartStates(nfa, adj.graph(), src), 0);
  return enumerator.stats;
}

std::optional<size_t> ShortestSimplePath(const AdjacencyIndex& adj,
                                         const Nfa& nfa, NodeId src,
                                         NodeId dst, uint64_t budget,
                                         EnumerationStats* stats) {
  SimplePathSearch search{adj, nfa, dst, budget, {}, {}, {}};
  search.visited.assign(adj.num_nodes(), false);
  search.Recurse(adj.IndexOf(src), StartStates(nfa, adj.graph(), src), 0);
  if (stats != nullptr) *stats = search.stats;
  return search.best;
}

}  // namespace bench
}  // namespace gcore
