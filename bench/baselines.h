// Baseline path evaluators for the ablation benchmarks.
//
// Section 4 argues G-CORE's path semantics was *chosen* for tractability:
// arbitrary-walk shortest paths are polynomial (product automaton +
// Dijkstra), whereas (a) materializing all conforming walks explodes and
// (b) simple-path semantics is NP-complete [Mendelzon & Wood 1995].
// These baselines realize the rejected alternatives so the benches can
// exhibit the blow-up the language design avoids.
#ifndef GCORE_BENCH_BASELINES_H_
#define GCORE_BENCH_BASELINES_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "eval/binding.h"
#include "graph/adjacency.h"
#include "paths/nfa.h"

namespace gcore {
namespace bench {

/// The seed's row-major Ω storage (BindingTable is columnar since the
/// vectorized-Ω refactor), shared by the benches that reconstruct seed
/// behavior so every "row path" baseline measures the same thing.
using SeedRows = std::vector<BindingRow>;

/// Materializes a columnar table into seed-style rows (done outside the
/// timed loops: the seed stored its tables this way to begin with).
SeedRows MaterializeRows(const BindingTable& table);

/// Counts conforming walks from src to dst up to `max_hops` hops by naive
/// enumeration (DFS over walks). Exponential in max_hops on dense graphs;
/// stops early after `budget` expansions and reports how many were used.
struct EnumerationStats {
  uint64_t walks_found = 0;
  uint64_t expansions = 0;
  bool budget_exhausted = false;
};
EnumerationStats EnumerateConformingWalks(const AdjacencyIndex& adj,
                                          const Nfa& nfa, NodeId src,
                                          NodeId dst, size_t max_hops,
                                          uint64_t budget);

/// Shortest *simple* path (no repeated node) from src to dst conforming to
/// the regex, by exhaustive backtracking — the NP-hard semantics Cypher 9
/// uses and G-CORE deliberately avoids. Returns its length, or nullopt.
/// Stops after `budget` expansions (sets stats.budget_exhausted).
std::optional<size_t> ShortestSimplePath(const AdjacencyIndex& adj,
                                         const Nfa& nfa, NodeId src,
                                         NodeId dst, uint64_t budget,
                                         EnumerationStats* stats);

}  // namespace bench
}  // namespace gcore

#endif  // GCORE_BENCH_BASELINES_H_
